//! Mergeable metric snapshots with a versioned wire form.
//!
//! A fleet of shard processes each holds its own [`Registry`]; the router
//! wants one coherent view. Quantile summaries cannot be combined after
//! the fold, but the raw log-bucket form ([`HistogramBuckets`]) can:
//! every process shares the same deterministic bucket boundaries, so
//! bucket-wise addition is *exact* — the merged histogram is bit-identical
//! to one histogram that had observed every shard's samples. Counters add;
//! gauges are instantaneous per-process readings and are deliberately not
//! merged (the aggregator renders them per shard instead).
//!
//! The wire encoding is length-prefixed, bounds-checked and carries its
//! own version byte ([`WIRE_VERSION`]) so the stats frame can evolve
//! independently of the CFWP frame header version.

use std::collections::BTreeMap;

use crate::{HistogramBuckets, Registry};

/// Version byte leading every encoded [`MergeSnapshot`]. Decoders reject
/// versions they do not know rather than guessing at field layouts.
pub const WIRE_VERSION: u8 = 1;

/// Hard caps the decoder enforces before allocating, so a corrupt or
/// hostile stats payload cannot balloon memory.
const MAX_ENTRIES: usize = 16 * 1024;
const MAX_NAME_LEN: usize = 256;
const MAX_NONZERO_BUCKETS: usize = 4096;

/// A point-in-time metric capture in mergeable form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeSnapshot {
    /// Counter values by name (merge: add).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (not merged; rendered per shard).
    pub gauges: BTreeMap<String, i64>,
    /// Histogram buckets by name (merge: exact bucket-wise add).
    pub histograms: BTreeMap<String, HistogramBuckets>,
}

/// Why a stats payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeDecodeError {
    /// Payload ended before a declared field.
    Truncated,
    /// Leading version byte names a layout this decoder does not know.
    UnknownVersion(u8),
    /// A declared count or length exceeds the decoder's hard caps.
    TooLarge,
    /// A metric name was not valid UTF-8.
    BadName,
}

impl std::fmt::Display for MergeDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeDecodeError::Truncated => write!(f, "stats payload truncated"),
            MergeDecodeError::UnknownVersion(v) => {
                write!(f, "unknown stats wire version {v}")
            }
            MergeDecodeError::TooLarge => write!(f, "stats payload exceeds decode caps"),
            MergeDecodeError::BadName => write!(f, "metric name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for MergeDecodeError {}

impl MergeSnapshot {
    /// Captures `reg` in mergeable form.
    pub fn of(reg: &Registry) -> Self {
        MergeSnapshot {
            counters: reg
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: reg
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: reg
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.buckets()))
                .collect(),
        }
    }

    /// Adds `other` into `self`: counters add, histograms merge
    /// bucket-wise (exact), gauges are left untouched — an instantaneous
    /// reading from another process has no meaningful sum.
    pub fn merge(&mut self, other: &Self) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Folds every histogram into its quantile summary, yielding the
    /// plain [`crate::Snapshot`] form renderers already understand.
    pub fn summarize(&self) -> crate::Snapshot {
        crate::Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// Encodes the snapshot in the versioned wire form. Histogram buckets
    /// are written sparsely (index, count pairs for nonzero buckets only)
    /// — most of the ~500 buckets are empty in practice.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.push(WIRE_VERSION);
        put_u32(&mut out, self.counters.len() as u32);
        for (name, v) in &self.counters {
            put_name(&mut out, name);
            put_u64(&mut out, *v);
        }
        put_u32(&mut out, self.gauges.len() as u32);
        for (name, v) in &self.gauges {
            put_name(&mut out, name);
            put_u64(&mut out, *v as u64);
        }
        put_u32(&mut out, self.histograms.len() as u32);
        for (name, h) in &self.histograms {
            put_name(&mut out, name);
            put_u64(&mut out, h.count);
            put_u64(&mut out, h.sum);
            put_u64(&mut out, h.min);
            put_u64(&mut out, h.max);
            let nonzero: Vec<(usize, u64)> = h
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, &c)| (i, c))
                .collect();
            put_u32(&mut out, nonzero.len() as u32);
            for (idx, c) in nonzero {
                put_u16(&mut out, idx as u16);
                put_u64(&mut out, c);
            }
        }
        out
    }

    /// Decodes a payload written by [`to_bytes`](Self::to_bytes) (any
    /// process, any uptime — the layout is self-describing within a
    /// version).
    pub fn from_bytes(buf: &[u8]) -> Result<Self, MergeDecodeError> {
        let mut c = Reader { buf, pos: 0 };
        let version = c.u8()?;
        if version != WIRE_VERSION {
            return Err(MergeDecodeError::UnknownVersion(version));
        }
        let mut snap = MergeSnapshot::default();
        let n_counters = c.len_capped(MAX_ENTRIES)?;
        for _ in 0..n_counters {
            let name = c.name()?;
            let v = c.u64()?;
            snap.counters.insert(name, v);
        }
        let n_gauges = c.len_capped(MAX_ENTRIES)?;
        for _ in 0..n_gauges {
            let name = c.name()?;
            let v = c.u64()? as i64;
            snap.gauges.insert(name, v);
        }
        let n_hists = c.len_capped(MAX_ENTRIES)?;
        for _ in 0..n_hists {
            let name = c.name()?;
            let mut h = HistogramBuckets::new();
            h.count = c.u64()?;
            h.sum = c.u64()?;
            h.min = c.u64()?;
            h.max = c.u64()?;
            let nonzero = c.len_capped(MAX_NONZERO_BUCKETS)?;
            for _ in 0..nonzero {
                let idx = c.u16()? as usize;
                let cnt = c.u64()?;
                if idx >= h.counts.len() {
                    // A future layout with more buckets: keep what fits
                    // rather than rejecting the whole snapshot.
                    h.counts.resize(idx + 1, 0);
                }
                h.counts[idx] = cnt;
            }
            snap.histograms.insert(name, h);
        }
        Ok(snap)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    let len = bytes.len().min(MAX_NAME_LEN);
    put_u16(out, len as u16);
    out.extend_from_slice(&bytes[..len]);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], MergeDecodeError> {
        let end = self.pos.checked_add(n).ok_or(MergeDecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(MergeDecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, MergeDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, MergeDecodeError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, MergeDecodeError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, MergeDecodeError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn len_capped(&mut self, cap: usize) -> Result<usize, MergeDecodeError> {
        let n = self.u32()? as usize;
        if n > cap {
            return Err(MergeDecodeError::TooLarge);
        }
        Ok(n)
    }

    fn name(&mut self) -> Result<String, MergeDecodeError> {
        let len = self.u16()? as usize;
        if len > MAX_NAME_LEN {
            return Err(MergeDecodeError::TooLarge);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| MergeDecodeError::BadName)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn sample_snapshot(seed: u64) -> MergeSnapshot {
        let reg = Registry::new();
        reg.counter("req").add(seed + 10);
        reg.counter("err").add(seed % 3);
        reg.gauge("gen").set(seed as i64);
        let h = reg.histogram("lat_ns");
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 1_000_000);
        }
        MergeSnapshot::of(&reg)
    }

    #[test]
    fn wire_round_trip_is_lossless() {
        let snap = sample_snapshot(7);
        let decoded = MergeSnapshot::from_bytes(&snap.to_bytes()).expect("round trip must decode");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn merge_is_bitwise_equal_to_recording_both_streams() {
        let reg_a = Registry::new();
        let reg_b = Registry::new();
        let combined = Histogram::new();
        for v in [1u64, 5, 17, 901, 77_000, 3_000_000] {
            reg_a.histogram("h").record(v);
            combined.record(v);
        }
        for v in [2u64, 5, 40, 901, 1 << 40] {
            reg_b.histogram("h").record(v);
            combined.record(v);
        }
        let mut merged = MergeSnapshot::of(&reg_a);
        merged.merge(&MergeSnapshot::of(&reg_b));
        assert_eq!(merged.histograms["h"], combined.buckets());
        assert_eq!(
            merged.histograms["h"].summary(),
            combined.snapshot(),
            "quantiles from merged buckets must match the single-histogram fold"
        );
    }

    #[test]
    fn counters_add_and_gauges_do_not_merge() {
        let mut a = sample_snapshot(1);
        let b = sample_snapshot(2);
        let a_req = a.counters["req"];
        let a_gen = a.gauges["gen"];
        a.merge(&b);
        assert_eq!(a.counters["req"], a_req + b.counters["req"]);
        assert_eq!(a.gauges["gen"], a_gen, "gauges are per-process readings");
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = sample_snapshot(3).to_bytes();
        bytes[0] = 9;
        assert_eq!(
            MergeSnapshot::from_bytes(&bytes),
            Err(MergeDecodeError::UnknownVersion(9))
        );
    }

    #[test]
    fn truncated_payload_is_rejected_not_panicked() {
        let bytes = sample_snapshot(4).to_bytes();
        for cut in 0..bytes.len().min(64) {
            let r = MergeSnapshot::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn count_over_skips_the_threshold_bucket() {
        let h = Histogram::new();
        for v in [10u64, 100, 1_000, 10_000] {
            h.record(v);
        }
        let b = h.buckets();
        assert_eq!(b.count_over(0), 4);
        assert_eq!(b.count_over(5_000), 1);
        assert_eq!(b.count_over(u64::MAX), 0);
    }
}
