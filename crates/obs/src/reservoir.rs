//! Schedulable cores for the trace tail-sampling storage: a bounded FIFO
//! ring and the slowest-seen reservoir with its lock-free admission bar.
//!
//! [`crate::trace`] used to hold this logic inline in its sink; it now
//! lives here, generic over the [`crate::sync::Shim`] family, so the
//! `cf-analysis` loom-lite model checker can run the *same* admission
//! logic under exhaustive interleaving exploration while production
//! instantiates it with [`crate::sync::StdShim`] at zero cost.
//!
//! Invariants the model checker asserts (and production relies on):
//!
//! - the reservoir never holds more than its capacity;
//! - once admitted, the maximum-keyed entry is never displaced by a
//!   smaller one (the slowest trace seen survives);
//! - the admission bar is monotone non-decreasing, so the lock-free
//!   pre-check ([`SlowReservoir::should_admit`]) may admit stale values
//!   but never *rejects* a value the under-lock re-check would keep.

use crate::sync::{Ordering, Shim, ShimAtomicU64, ShimMutex};
use std::collections::VecDeque;

/// A bounded FIFO ring: pushing at capacity evicts the oldest entry.
/// Plain data — callers provide the locking (the trace sink holds its
/// rings under one mutex; models wrap it in a scheduler-instrumented
/// one).
#[derive(Debug, Clone)]
pub struct BoundedRing<T> {
    cap: usize,
    items: VecDeque<T>,
}

impl<T> BoundedRing<T> {
    /// A fresh empty ring bounded to `cap` entries (`cap >= 1` enforced).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            items: VecDeque::with_capacity(cap.max(1)),
        }
    }

    /// Appends `value`, evicting the oldest entry when full. Returns the
    /// evicted entry, if any.
    pub fn push(&mut self, value: T) -> Option<T> {
        let evicted = if self.items.len() >= self.cap {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(value);
        evicted
    }

    /// Entries currently held, oldest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &T> {
        self.items.iter()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

struct SlowInner<T> {
    /// Unordered; admission keeps it the `cap` largest-keyed entries.
    items: Vec<(u64, T)>,
}

/// The slowest-seen reservoir: a bounded set keeping the entries with the
/// largest keys (request latencies), guarded by a lock-free admission bar
/// so in steady state only genuinely slow requests touch the lock.
///
/// The bar is the reservoir minimum plus one once full, else 0: a value
/// below the bar cannot displace anything, so [`Self::should_admit`]
/// rejects it without locking. The bar may lag (a racing admit can raise
/// the true minimum before the store lands), which only causes spurious
/// lock attempts — [`Self::admit`] re-checks under the lock.
pub struct SlowReservoir<S: Shim, T: Send + 'static> {
    cap: usize,
    bar: S::AtomicU64,
    inner: S::Mutex<SlowInner<T>>,
}

impl<S: Shim, T: Send + 'static> SlowReservoir<S, T> {
    /// A fresh empty reservoir bounded to `cap` entries (`cap >= 1`
    /// enforced).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            bar: S::AtomicU64::new(0),
            inner: S::Mutex::new(SlowInner { items: Vec::new() }),
        }
    }

    /// Lock-free pre-check: could `key` be admitted right now? `true` may
    /// be stale (the bar rises concurrently); `false` is authoritative
    /// because the bar is monotone.
    pub fn should_admit(&self, key: u64) -> bool {
        key >= self.bar.load(Ordering::Relaxed)
    }

    /// Admits `(key, value)` if it belongs among the `cap` largest,
    /// displacing the current minimum when full. Returns `true` when the
    /// value was stored. Raises the admission bar to `min + 1` whenever
    /// the reservoir is full on exit.
    pub fn admit(&self, key: u64, value: T) -> bool {
        let mut inner = self.inner.lock_recover();
        let stored = if inner.items.len() < self.cap {
            inner.items.push((key, value));
            true
        } else {
            // Re-check under the lock: the bar may have moved since the
            // caller's `should_admit`.
            let (min_idx, min_key) = inner
                .items
                .iter()
                .enumerate()
                .map(|(i, (k, _))| (i, *k))
                .min_by_key(|&(_, k)| k)
                .unwrap_or((0, 0));
            if key > min_key {
                inner.items[min_idx] = (key, value);
                true
            } else {
                false
            }
        };
        if inner.items.len() >= self.cap {
            let new_min = inner.items.iter().map(|(k, _)| *k).min().unwrap_or(0);
            self.bar.store(new_min.saturating_add(1), Ordering::Relaxed);
        }
        stored
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock_recover().items.len()
    }

    /// True when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The current admission bar (diagnostics / model assertions).
    pub fn bar(&self) -> u64 {
        self.bar.load(Ordering::Relaxed)
    }

    /// Removes every entry and resets the admission bar.
    pub fn clear(&self) {
        let mut inner = self.inner.lock_recover();
        inner.items.clear();
        self.bar.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the held entries where `T: Clone`, largest key first.
    pub fn snapshot_sorted(&self) -> Vec<(u64, T)>
    where
        T: Clone,
    {
        let mut items = self.inner.lock_recover().items.clone();
        items.sort_by_key(|&(k, _)| std::cmp::Reverse(k));
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::StdShim;

    #[test]
    fn bounded_ring_evicts_oldest() {
        let mut r = BoundedRing::new(3);
        assert!(r.is_empty());
        assert_eq!(r.push(1), None);
        assert_eq!(r.push(2), None);
        assert_eq!(r.push(3), None);
        assert_eq!(r.push(4), Some(1), "oldest entry must be evicted");
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn reservoir_keeps_the_largest_and_raises_the_bar() {
        let r: SlowReservoir<StdShim, &'static str> = SlowReservoir::new(2);
        assert!(r.should_admit(0), "empty reservoir admits everything");
        assert!(r.admit(10, "a"));
        assert!(r.admit(30, "b"));
        // Full: bar is min + 1 = 11; a value of 10 is pre-rejected.
        assert_eq!(r.bar(), 11);
        assert!(!r.should_admit(10));
        assert!(!r.admit(5, "c"), "below-min value must not displace");
        assert!(r.admit(20, "d"), "above-min value displaces the min");
        assert_eq!(r.bar(), 21);
        let snap = r.snapshot_sorted();
        assert_eq!(snap[0], (30, "b"), "maximum entry must survive");
        assert_eq!(snap[1], (20, "d"));
        assert_eq!(r.len(), 2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.bar(), 0);
    }

    #[test]
    fn bar_is_monotone_under_interleaved_admissions() {
        let r: SlowReservoir<StdShim, u32> = SlowReservoir::new(2);
        let mut last_bar = 0;
        for key in [5, 1, 9, 3, 12, 12, 2, 40] {
            if r.should_admit(key) {
                r.admit(key, 0);
            }
            assert!(r.bar() >= last_bar, "bar must never decrease");
            last_bar = r.bar();
        }
        assert_eq!(r.snapshot_sorted()[0].0, 40);
    }
}
