//! cf-trace — request-scoped tracing with head + tail sampling.
//!
//! Aggregate counters and histograms (the rest of this crate) answer *how
//! much* and *how slow on average*; this module answers *which request*
//! and *why*. Each online prediction opens a trace ([`begin_request`]),
//! hot-path stages record spans into a **per-thread buffer**
//! ([`span`]), and [`RequestGuard::finish`] decides whether the completed
//! trace is merged into the bounded global rings:
//!
//! - **head sampling** — every `N`-th request per thread
//!   ([`set_head_sample_every`], default 64) keeps its full span tree in
//!   the *recent* ring, giving a steady trickle of representative traces;
//! - **tail sampling** — regardless of the head decision, a request that
//!   lands in the slowest-seen reservoir, was served from the
//!   degradation ladder's fallback region, or carries an anomaly note
//!   (e.g. a caught panic) is always kept. Tail-kept requests that were
//!   not head-sampled have no span detail (spans are only recorded for
//!   sampled requests, to keep the non-sampled hot path at two
//!   timestamps), but carry the full request attribution: user, item,
//!   degrade rung, `K`/`M` used, total latency, notes.
//!
//! Every finished request also records into the `online.request_ns`
//! histogram, and every *kept* trace registers an exemplar — (value,
//! trace id) keyed by the value's octave — so a p99 bucket on the
//! `/metrics` endpoint links to a concrete captured trace
//! ([`exemplars`]).
//!
//! All storage is bounded: the recent ring, slow reservoir and degraded
//! ring have fixed capacities ([`RECENT_CAP`], [`SLOW_CAP`],
//! [`DEGRADED_CAP`]); the slow reservoir's admission threshold is the
//! reservoir minimum once full (an atomic, checked lock-free), so in
//! steady state only genuinely slow requests touch a lock.
//!
//! Disabled behavior: [`crate::set_enabled`]`(false)` or a sample rate of
//! 0 makes [`begin_request`] return an inert guard — no timestamps, no
//! TLS writes beyond one flag read, nothing recorded.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::reservoir::{BoundedRing, SlowReservoir};
use crate::sync::{RecoverMutex, StdShim};

/// Bound of the head-sampled *recent* ring.
pub const RECENT_CAP: usize = 64;
/// Bound of the slowest-seen reservoir.
pub const SLOW_CAP: usize = 32;
/// Bound of the degraded/anomaly ring.
pub const DEGRADED_CAP: usize = 32;
/// Cap on notes per trace (anomalies are rare; a runaway loop must not
/// grow the thread buffer unboundedly).
const NOTES_CAP: usize = 8;

/// Histogram name request totals are recorded into and exemplars are
/// attached to.
pub const REQUEST_HISTOGRAM: &str = "online.request_ns";

// --------------------------------------------------------------------------
// Configuration
// --------------------------------------------------------------------------

/// Head-sample every N-th request per thread; 0 disables tracing.
static HEAD_EVERY: AtomicU32 = AtomicU32::new(64);
/// Monotone trace-id source (ids are allocated only for kept traces).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a trace id unique within this process and very unlikely to
/// collide across a fleet: the top 16 bits carry the process id, so a
/// router-propagated id and a shard's locally-allocated ids stay
/// distinguishable in the same `/traces` dump.
fn alloc_trace_id() -> u64 {
    let seq = NEXT_ID.fetch_add(1, Ordering::Relaxed) & 0x0000_ffff_ffff_ffff;
    ((std::process::id() as u64 & 0xffff) << 48) | seq
}

/// Sets the head-sampling rate: every `n`-th request per thread captures
/// a full span tree. `1` samples everything (tests, debugging), `0`
/// disables tracing entirely (tail sampling included).
pub fn set_head_sample_every(n: u32) {
    HEAD_EVERY.store(n, Ordering::Relaxed);
}

/// The current head-sampling rate (see [`set_head_sample_every`]).
pub fn head_sample_every() -> u32 {
    HEAD_EVERY.load(Ordering::Relaxed)
}

// --------------------------------------------------------------------------
// Captured traces
// --------------------------------------------------------------------------

/// One completed span inside a captured trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Stage name, e.g. `"select"` or `"estimator.suir"`.
    pub name: &'static str,
    /// Offset from the trace's start, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth below the request root (root children are 0).
    pub depth: u8,
}

/// Cross-process trace context: everything a frame needs to carry so a
/// downstream process can continue the span tree. Encoded leniently as
/// trailing frame bytes by `cf-serve` (`frame.rs` attaches it; old peers
/// ignore it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The originating request's trace id; the downstream trace adopts it.
    pub trace_id: u64,
    /// Span depth at the propagation point (attribution for stitching).
    pub parent_span: u32,
    /// The origin's sampling decision: when true the downstream process
    /// records a full span tree and ships it back even if its own head
    /// sampler would not have fired.
    pub sampled: bool,
}

/// A completed span captured in *another* process and stitched into a
/// local trace. Unlike [`SpanRec`] the name is owned — it crossed a wire.
/// `start_ns` offsets are relative to the remote request's own start
/// (processes share no clock), so stitched trees show remote durations
/// and structure, not absolute alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteSpan {
    /// Where the span ran, e.g. `"shard2"`; empty while still in the
    /// capturing process (the stitcher fills it in).
    pub origin: String,
    /// Stage name as captured remotely.
    pub name: String,
    /// Offset from the *remote* request start, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth below the remote request root.
    pub depth: u8,
}

/// Cap on remote spans one trace will hold (and one response will ship).
pub const REMOTE_SPANS_CAP: usize = 128;

/// Why a trace was kept (bit flags; several can apply).
pub mod keep {
    /// Head-sampled (every N-th request).
    pub const HEAD: u8 = 1;
    /// Admitted to the slowest-seen reservoir.
    pub const SLOW: u8 = 2;
    /// Served from the degradation ladder's fallback region.
    pub const DEGRADED: u8 = 4;
    /// Carried an anomaly note (caught panic, injected fault, abandon).
    pub const NOTE: u8 = 8;
}

/// A captured request trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Unique id (allocated at keep time; what exemplars reference).
    pub id: u64,
    /// Raw user id of the request.
    pub user: u32,
    /// Raw item id of the request.
    pub item: u32,
    /// End-to-end request latency in nanoseconds.
    pub total_ns: u64,
    /// Degradation-ladder rung the prediction was served from.
    pub level: &'static str,
    /// True when `level` is in the ladder's fallback region.
    pub fallback: bool,
    /// Like-minded users used.
    pub k_used: u32,
    /// Similar items used.
    pub m_used: u32,
    /// The served (clamped) prediction.
    pub fused: f64,
    /// Anomaly notes recorded during the request.
    pub notes: Vec<&'static str>,
    /// Span tree (empty for tail-kept traces that were not head-sampled).
    pub spans: Vec<SpanRec>,
    /// Spans captured in other processes and stitched under this trace
    /// (router side; empty for purely local requests).
    pub remote_spans: Vec<RemoteSpan>,
    /// [`keep`] flags explaining why this trace survived.
    pub why: u8,
}

impl Trace {
    /// Human-readable keep reasons, e.g. `"head+slow"`.
    pub fn why_str(&self) -> String {
        let mut parts = Vec::new();
        if self.why & keep::HEAD != 0 {
            parts.push("head");
        }
        if self.why & keep::SLOW != 0 {
            parts.push("slow");
        }
        if self.why & keep::DEGRADED != 0 {
            parts.push("degraded");
        }
        if self.why & keep::NOTE != 0 {
            parts.push("note");
        }
        parts.join("+")
    }
}

/// Point-in-time view of the global trace rings.
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// Slowest requests seen, slowest first.
    pub slow: Vec<Arc<Trace>>,
    /// Most recent degraded / anomalous requests, newest first.
    pub degraded: Vec<Arc<Trace>>,
    /// Most recent head-sampled requests, newest first.
    pub recent: Vec<Arc<Trace>>,
}

impl TraceDump {
    /// True when no ring holds any trace.
    pub fn is_empty(&self) -> bool {
        self.slow.is_empty() && self.degraded.is_empty() && self.recent.is_empty()
    }
}

/// An exemplar: a concrete captured trace standing in for a histogram
/// value region (keyed by octave = `floor(log2(value))`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The sampled value (nanoseconds for latency histograms).
    pub value: u64,
    /// Id of the captured trace ([`Trace::id`]).
    pub trace_id: u64,
}

struct Sink {
    recent: BoundedRing<Arc<Trace>>,
    degraded: BoundedRing<Arc<Trace>>,
    /// metric name → octave → exemplar.
    exemplars: BTreeMap<String, BTreeMap<u8, Exemplar>>,
}

fn sink() -> &'static RecoverMutex<Sink> {
    static SINK: OnceLock<RecoverMutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        RecoverMutex::new(Sink {
            recent: BoundedRing::new(RECENT_CAP),
            degraded: BoundedRing::new(DEGRADED_CAP),
            exemplars: BTreeMap::new(),
        })
    })
}

/// The slowest-seen reservoir. Its admission logic (lock-free bar +
/// under-lock re-check) lives in [`crate::reservoir::SlowReservoir`] —
/// the same core the `cf-analysis` model checker explores exhaustively.
fn slow_reservoir() -> &'static SlowReservoir<StdShim, Arc<Trace>> {
    static SLOW: OnceLock<SlowReservoir<StdShim, Arc<Trace>>> = OnceLock::new();
    SLOW.get_or_init(|| SlowReservoir::new(SLOW_CAP))
}

fn lock_sink() -> std::sync::MutexGuard<'static, Sink> {
    // The sink is derived telemetry; a poisoning panic elsewhere must not
    // cascade, so recover the data as-is.
    sink().lock()
}

/// Snapshot of the trace rings for rendering or assertions.
pub fn snapshot() -> TraceDump {
    let slow = slow_reservoir()
        .snapshot_sorted()
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let s = lock_sink();
    TraceDump {
        slow,
        degraded: s.degraded.iter().rev().cloned().collect(),
        recent: s.recent.iter().rev().cloned().collect(),
    }
}

/// Current exemplars as `(metric, octave, exemplar)` triples.
pub fn exemplars() -> Vec<(String, u8, Exemplar)> {
    let s = lock_sink();
    s.exemplars
        .iter()
        .flat_map(|(m, octaves)| octaves.iter().map(move |(&o, &e)| (m.clone(), o, e)))
        .collect()
}

/// Attaches an exemplar to `metric` for `value`'s octave. Called
/// automatically for kept traces; public so other subsystems can link
/// their own histograms to trace ids.
pub fn record_exemplar(metric: &str, value: u64, trace_id: u64) {
    let octave = 63 - value.max(1).leading_zeros();
    let mut s = lock_sink();
    if !s.exemplars.contains_key(metric) && s.exemplars.len() >= 32 {
        return; // bound the per-metric map against name explosions
    }
    s.exemplars
        .entry(metric.to_string())
        .or_default()
        .insert(octave as u8, Exemplar { value, trace_id });
}

/// Empties every ring, the exemplar store and the slow-admission bar
/// (tests; operators via registry reset keep traces).
pub fn clear() {
    let mut s = lock_sink();
    s.recent.clear();
    s.degraded.clear();
    s.exemplars.clear();
    drop(s);
    // Also resets the admission bar.
    slow_reservoir().clear();
}

// --------------------------------------------------------------------------
// Per-thread request state
// --------------------------------------------------------------------------

/// Thread state: 0 = no active trace, 1 = active coarse (tail-only),
/// 2 = active and head-sampled (spans recorded).
const IDLE: u8 = 0;
const COARSE: u8 = 1;
const SAMPLED: u8 = 2;

struct Detail {
    start: Option<Instant>,
    user: u32,
    item: u32,
    depth: u8,
    spans: Vec<SpanRec>,
    notes: Vec<&'static str>,
    /// Trace id fixed before completion — either adopted from a remote
    /// [`TraceContext`] or eagerly allocated because this request
    /// propagated its own context downstream. 0 = allocate at keep time.
    pending_id: u64,
    /// Remote spans stitched in while the request is active.
    remote: Vec<RemoteSpan>,
}

impl Default for Detail {
    fn default() -> Self {
        Self {
            start: None,
            user: 0,
            item: 0,
            depth: 0,
            spans: Vec::with_capacity(16),
            notes: Vec::new(),
            pending_id: 0,
            remote: Vec::new(),
        }
    }
}

thread_local! {
    static STATE: Cell<u8> = const { Cell::new(IDLE) };
    static HEAD_CTR: Cell<u32> = const { Cell::new(0) };
    static DETAIL: RefCell<Detail> = RefCell::new(Detail::default());
    /// Remote adoption armed by [`begin_remote`]: the next requests on
    /// this thread continue the propagated trace instead of starting
    /// their own id / sampling decision.
    static REMOTE_CTX: Cell<Option<TraceContext>> = const { Cell::new(None) };
    /// Span export buffer filled by `complete` while remote adoption is
    /// armed; drained by [`RemoteGuard::finish`].
    static REMOTE_EXPORT: RefCell<Vec<RemoteSpan>> = const { RefCell::new(Vec::new()) };
}

/// Guard for one request's trace. Obtain via [`begin_request`]; close
/// with [`RequestGuard::finish`]. Dropping without finishing (panic
/// unwinding through the request) records an `"abandoned"` note and
/// finishes with an unknown outcome, so escaped panics stay visible.
pub struct RequestGuard {
    armed: bool,
}

/// What the request produced, reported at [`RequestGuard::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    /// Degradation-ladder rung name (stable snake_case).
    pub level: &'static str,
    /// True when served from the ladder's fallback region.
    pub fallback: bool,
    /// Like-minded users used.
    pub k_used: u32,
    /// Similar items used.
    pub m_used: u32,
    /// The served (clamped) prediction.
    pub fused: f64,
}

/// Opens a request trace on this thread. One request per thread at a
/// time: serving code paths never nest predictions, and a nested call
/// would simply restart the thread's buffer.
#[inline]
pub fn begin_request(user: u32, item: u32) -> RequestGuard {
    let every = HEAD_EVERY.load(Ordering::Relaxed);
    if every == 0 || !crate::enabled() {
        return RequestGuard { armed: false };
    }
    let remote = REMOTE_CTX.get();
    let sampled = match remote {
        // A propagated sampling decision overrides the local head
        // counter in both directions: the origin either wants the whole
        // cross-process tree or none of it.
        Some(ctx) => ctx.sampled,
        None => HEAD_CTR.with(|c| {
            let n = c.get().wrapping_add(1);
            c.set(n);
            n % every == 0
        }),
    };
    DETAIL.with(|d| {
        let d = &mut *d.borrow_mut();
        d.start = Some(Instant::now());
        d.user = user;
        d.item = item;
        d.depth = 0;
        d.spans.clear();
        d.notes.clear();
        d.pending_id = remote.map(|ctx| ctx.trace_id).unwrap_or(0);
        d.remote.clear();
    });
    STATE.set(if sampled { SAMPLED } else { COARSE });
    RequestGuard { armed: true }
}

// --------------------------------------------------------------------------
// Cross-process propagation
// --------------------------------------------------------------------------

/// The active request's propagatable context, or `None` when no trace is
/// active on this thread. Allocates the trace id eagerly on first call
/// (the id must cross the wire before the keep decision is made), so the
/// eventual kept trace and all downstream spans agree on it.
pub fn current_context() -> Option<TraceContext> {
    if STATE.get() == IDLE {
        return None;
    }
    let sampled = STATE.get() == SAMPLED;
    DETAIL.with(|d| {
        let d = &mut *d.borrow_mut();
        if d.pending_id == 0 {
            d.pending_id = alloc_trace_id();
        }
        Some(TraceContext {
            trace_id: d.pending_id,
            parent_span: d.depth as u32,
            sampled,
        })
    })
}

/// Guard for a remote-adopted section on a serving thread. While alive,
/// requests begun on this thread continue the propagated trace (same id,
/// same sampling decision) and their completed spans are exported for
/// shipping back. Dropping disarms adoption and discards unclaimed spans.
pub struct RemoteGuard {
    prev: Option<TraceContext>,
    armed: bool,
}

/// Arms remote trace adoption on this thread: until the returned guard is
/// finished or dropped, [`begin_request`] continues `ctx`'s trace. Call
/// on the shard's connection thread before dispatching a request that
/// carried a context.
pub fn begin_remote(ctx: TraceContext) -> RemoteGuard {
    let prev = REMOTE_CTX.replace(Some(ctx));
    REMOTE_EXPORT.with(|b| b.borrow_mut().clear());
    RemoteGuard { prev, armed: true }
}

impl RemoteGuard {
    fn disarm(&mut self) {
        if self.armed {
            self.armed = false;
            REMOTE_CTX.set(self.prev.take());
        }
    }

    /// Disarms adoption and returns every span completed while armed —
    /// the payload the shard appends to its response frame. Spans carry
    /// an empty origin; the stitching side fills it in.
    pub fn finish(mut self) -> Vec<RemoteSpan> {
        self.disarm();
        REMOTE_EXPORT.with(|b| std::mem::take(&mut *b.borrow_mut()))
    }
}

impl Drop for RemoteGuard {
    fn drop(&mut self) {
        self.disarm();
    }
}

/// Stitches spans captured in another process into the active trace,
/// labeling each with `origin` (e.g. `"shard2"`). No-op when no trace is
/// active or the trace is not head-sampled; attachment is bounded by
/// [`REMOTE_SPANS_CAP`].
pub fn attach_remote_spans(origin: &str, spans: Vec<RemoteSpan>) {
    if STATE.get() != SAMPLED || spans.is_empty() {
        return;
    }
    DETAIL.with(|d| {
        let d = &mut *d.borrow_mut();
        for mut s in spans {
            if d.remote.len() >= REMOTE_SPANS_CAP {
                break;
            }
            s.origin = origin.to_string();
            d.remote.push(s);
        }
    });
}

/// RAII guard for one stage of the active request. No-op (one TLS flag
/// read) when the request is not head-sampled or no trace is active.
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    depth: u8,
    active: bool,
}

/// Opens a span named `name` under the active trace, closing at drop.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if STATE.get() != SAMPLED {
        return SpanGuard {
            name,
            start_ns: 0,
            depth: 0,
            active: false,
        };
    }
    DETAIL.with(|d| {
        let d = &mut *d.borrow_mut();
        let start_ns = d
            .start
            .map(|s| s.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let depth = d.depth;
        d.depth = d.depth.saturating_add(1);
        SpanGuard {
            name,
            start_ns,
            depth,
            active: true,
        }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        DETAIL.with(|d| {
            let d = &mut *d.borrow_mut();
            let end_ns = d
                .start
                .map(|s| s.elapsed().as_nanos().min(u64::MAX as u128) as u64)
                .unwrap_or(self.start_ns);
            d.depth = d.depth.saturating_sub(1);
            // Bound the span buffer: a pathological loop of spans must not
            // grow a thread buffer without limit.
            if d.spans.len() < 256 {
                d.spans.push(SpanRec {
                    name: self.name,
                    start_ns: self.start_ns,
                    dur_ns: end_ns.saturating_sub(self.start_ns),
                    depth: self.depth,
                });
            }
        });
    }
}

/// Records an anomaly note (caught panic, injected fault) on the active
/// trace. A noted request is always tail-kept. No-op without an active
/// trace.
pub fn note(tag: &'static str) {
    if STATE.get() == IDLE {
        return;
    }
    DETAIL.with(|d| {
        let d = &mut *d.borrow_mut();
        if d.notes.len() < NOTES_CAP && !d.notes.contains(&tag) {
            d.notes.push(tag);
        }
    });
}

impl RequestGuard {
    /// Closes the trace with the request's outcome, recording the total
    /// into [`REQUEST_HISTOGRAM`] and deciding head/tail retention.
    pub fn finish(mut self, outcome: Outcome) {
        if self.armed {
            self.armed = false;
            complete(&outcome);
        }
    }
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        if self.armed {
            // Unwound out of the request: keep it visible.
            note("abandoned");
            complete(&Outcome {
                level: "unknown",
                fallback: false,
                k_used: 0,
                m_used: 0,
                fused: f64::NAN,
            });
        }
    }
}

fn complete(outcome: &Outcome) {
    let sampled = STATE.get() == SAMPLED;
    STATE.set(IDLE);
    let (total_ns, user, item, spans, notes, pending_id, remote) = DETAIL.with(|d| {
        let d = &mut *d.borrow_mut();
        let total = d
            .start
            .take()
            .map(|s| s.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let pending_id = std::mem::take(&mut d.pending_id);
        (
            total,
            d.user,
            d.item,
            std::mem::take(&mut d.spans),
            std::mem::take(&mut d.notes),
            pending_id,
            std::mem::take(&mut d.remote),
        )
    });
    crate::histogram!(REQUEST_HISTOGRAM).record(total_ns);

    // A remote-adopted, sampled request exports its completed tree (root
    // first) for the serving layer to ship back to the origin.
    if sampled && REMOTE_CTX.get().is_some() {
        REMOTE_EXPORT.with(|b| {
            let b = &mut *b.borrow_mut();
            if b.len() < REMOTE_SPANS_CAP {
                b.push(RemoteSpan {
                    origin: String::new(),
                    name: "remote.request".to_string(),
                    start_ns: 0,
                    dur_ns: total_ns,
                    depth: 0,
                });
            }
            for s in &spans {
                if b.len() >= REMOTE_SPANS_CAP {
                    break;
                }
                b.push(RemoteSpan {
                    origin: String::new(),
                    name: s.name.to_string(),
                    start_ns: s.start_ns,
                    dur_ns: s.dur_ns,
                    depth: s.depth.saturating_add(1),
                });
            }
        });
    }

    let mut why = 0u8;
    if sampled {
        why |= keep::HEAD;
    }
    if slow_reservoir().should_admit(total_ns) {
        why |= keep::SLOW;
    }
    if outcome.fallback {
        why |= keep::DEGRADED;
    }
    if !notes.is_empty() {
        why |= keep::NOTE;
    }
    if why == 0 {
        // Return the span buffer's capacity to the thread for reuse.
        DETAIL.with(|d| {
            let d = &mut *d.borrow_mut();
            if d.spans.capacity() < spans.capacity() {
                d.spans = spans;
                d.spans.clear();
            }
        });
        return;
    }

    let trace = Arc::new(Trace {
        id: if pending_id != 0 {
            pending_id
        } else {
            alloc_trace_id()
        },
        user,
        item,
        total_ns,
        level: outcome.level,
        fallback: outcome.fallback,
        k_used: outcome.k_used,
        m_used: outcome.m_used,
        fused: outcome.fused,
        notes,
        spans,
        remote_spans: remote,
        why,
    });

    if why & keep::SLOW != 0 {
        // The reservoir re-checks under its own lock (the admission bar
        // may have moved since `should_admit`); the counter tracks
        // traces actually stored.
        if slow_reservoir().admit(total_ns, Arc::clone(&trace)) {
            crate::counter!("trace.captured.slow").inc();
        }
    }
    let mut s = lock_sink();
    if why & keep::HEAD != 0 {
        crate::counter!("trace.captured.head").inc();
        s.recent.push(Arc::clone(&trace));
    }
    if why & (keep::DEGRADED | keep::NOTE) != 0 {
        crate::counter!("trace.captured.degraded").inc();
        s.degraded.push(Arc::clone(&trace));
    }
    drop(s);
    record_exemplar(REQUEST_HISTOGRAM, total_ns, trace.id);
}

// --------------------------------------------------------------------------
// Rendering
// --------------------------------------------------------------------------

fn render_trace(out: &mut String, t: &Trace) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "trace {} [{}] user={} item={} level={} fused={:.2} k_used={} m_used={} total={}ns",
        t.id,
        t.why_str(),
        t.user,
        t.item,
        t.level,
        t.fused,
        t.k_used,
        t.m_used,
        t.total_ns
    );
    if !t.notes.is_empty() {
        let _ = writeln!(out, "  notes: {}", t.notes.join(", "));
    }
    let mut spans = t.spans.clone();
    spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(a.depth.cmp(&b.depth)));
    for s in &spans {
        let _ = writeln!(
            out,
            "  {}{:<24} {:>10}ns  @{}ns",
            "  ".repeat(s.depth as usize),
            s.name,
            s.dur_ns,
            s.start_ns
        );
    }
    // Stitched remote spans, grouped by origin. Offsets are relative to
    // the remote request's own start, so each origin group is its own
    // timeline nested under this trace.
    let mut last_origin: Option<&str> = None;
    for s in &t.remote_spans {
        if last_origin != Some(s.origin.as_str()) {
            let _ = writeln!(out, "  remote {} (trace {}):", s.origin, t.id);
            last_origin = Some(s.origin.as_str());
        }
        let _ = writeln!(
            out,
            "    {}{:<24} {:>10}ns  @{}ns",
            "  ".repeat(s.depth as usize),
            s.name,
            s.dur_ns,
            s.start_ns
        );
    }
}

fn render_section(out: &mut String, title: &str, traces: &[Arc<Trace>]) {
    use std::fmt::Write;
    let _ = writeln!(out, "== {title} ({}) ==", traces.len());
    for t in traces {
        render_trace(out, t);
    }
    out.push('\n');
}

/// Renders the given dump as indented span trees (the `/traces` endpoint
/// and `cfsf-cli trace dump` payload).
pub fn render(dump: &TraceDump) -> String {
    let mut out = String::new();
    render_section(&mut out, "slowest", &dump.slow);
    render_section(&mut out, "degraded / anomalous", &dump.degraded);
    render_section(&mut out, "recent (head-sampled)", &dump.recent);
    out
}

/// Convenience: render the current global rings.
pub fn render_current() -> String {
    render(&snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Trace tests share process-global rings; serialize them.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        clear();
        set_head_sample_every(64);
        g
    }

    #[test]
    fn sampled_request_captures_span_tree() {
        let _g = locked();
        set_head_sample_every(1);
        let req = begin_request(7, 42);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        req.finish(Outcome {
            level: "full",
            fallback: false,
            k_used: 25,
            m_used: 95,
            fused: 4.2,
        });
        let dump = snapshot();
        assert_eq!(dump.recent.len(), 1);
        let t = &dump.recent[0];
        assert_eq!(t.user, 7);
        assert_eq!(t.item, 42);
        assert!(t.why & keep::HEAD != 0);
        assert_eq!(t.spans.len(), 2);
        // Completion order is inner-first; depths identify the nesting.
        assert_eq!(t.spans[0].name, "inner");
        assert_eq!(t.spans[0].depth, 1);
        assert_eq!(t.spans[1].name, "outer");
        assert_eq!(t.spans[1].depth, 0);
        assert!(t.spans[1].dur_ns >= t.spans[0].dur_ns);
    }

    #[test]
    fn degraded_request_is_tail_kept_without_head_sampling() {
        let _g = locked();
        set_head_sample_every(u32::MAX); // head effectively never fires
        let req = begin_request(3, 9);
        req.finish(Outcome {
            level: "global_mean",
            fallback: true,
            k_used: 0,
            m_used: 0,
            fused: 3.1,
        });
        let dump = snapshot();
        assert!(dump.recent.is_empty());
        assert_eq!(dump.degraded.len(), 1);
        assert_eq!(dump.degraded[0].level, "global_mean");
        assert!(dump.degraded[0].spans.is_empty(), "coarse capture only");
        assert!(dump.degraded[0].why & keep::DEGRADED != 0);
    }

    #[test]
    fn noted_request_is_always_kept() {
        let _g = locked();
        set_head_sample_every(u32::MAX);
        let req = begin_request(1, 1);
        note("select_panic");
        note("select_panic"); // deduped
        req.finish(Outcome {
            level: "single_estimator",
            fallback: false,
            k_used: 0,
            m_used: 4,
            fused: 2.0,
        });
        let dump = snapshot();
        assert_eq!(dump.degraded.len(), 1);
        assert_eq!(dump.degraded[0].notes, vec!["select_panic"]);
        assert!(dump.degraded[0].why & keep::NOTE != 0);
    }

    #[test]
    fn abandoned_request_surfaces_via_drop() {
        let _g = locked();
        set_head_sample_every(u32::MAX);
        {
            let _req = begin_request(5, 6);
            // dropped without finish (simulates an unwinding panic)
        }
        let dump = snapshot();
        assert_eq!(dump.degraded.len(), 1);
        assert!(dump.degraded[0].notes.contains(&"abandoned"));
        assert_eq!(dump.degraded[0].level, "unknown");
    }

    #[test]
    fn slow_reservoir_is_bounded_and_keeps_the_slowest() {
        let _g = locked();
        set_head_sample_every(u32::MAX);
        // Fill well past the bound; each is "slow" until the bar rises.
        for k in 0..(SLOW_CAP * 4) {
            let req = begin_request(k as u32, 0);
            // Make later requests genuinely slower so they displace.
            std::hint::black_box((0..(k * 50)).sum::<usize>());
            req.finish(Outcome {
                level: "full",
                fallback: false,
                k_used: 1,
                m_used: 1,
                fused: 1.0,
            });
        }
        let dump = snapshot();
        assert!(dump.slow.len() <= SLOW_CAP);
        assert!(!dump.slow.is_empty());
        // Sorted slowest-first.
        assert!(dump.slow.windows(2).all(|w| w[0].total_ns >= w[1].total_ns));
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = locked();
        set_head_sample_every(1);
        crate::set_enabled(false);
        let req = begin_request(1, 2);
        {
            let _s = span("anything");
        }
        note("ignored");
        req.finish(Outcome {
            level: "full",
            fallback: true, // would otherwise be tail-kept
            k_used: 0,
            m_used: 0,
            fused: 1.0,
        });
        crate::set_enabled(true);
        assert!(snapshot().is_empty(), "disabled registry must stay silent");

        set_head_sample_every(0);
        let req = begin_request(1, 2);
        req.finish(Outcome {
            level: "full",
            fallback: true,
            k_used: 0,
            m_used: 0,
            fused: 1.0,
        });
        assert!(snapshot().is_empty(), "rate 0 must disable tracing");
    }

    #[test]
    fn kept_trace_registers_an_exemplar() {
        let _g = locked();
        set_head_sample_every(1);
        let req = begin_request(11, 13);
        req.finish(Outcome {
            level: "full",
            fallback: false,
            k_used: 2,
            m_used: 3,
            fused: 4.0,
        });
        let ex = exemplars();
        assert!(
            ex.iter()
                .any(|(m, _, e)| m == REQUEST_HISTOGRAM && e.trace_id > 0),
            "exemplar must link the request histogram to a trace id: {ex:?}"
        );
        let dump = snapshot();
        let ids: Vec<u64> = dump.recent.iter().map(|t| t.id).collect();
        assert!(ex.iter().any(|(_, _, e)| ids.contains(&e.trace_id)));
    }

    #[test]
    fn current_context_allocates_id_once_and_tracks_sampling() {
        let _g = locked();
        set_head_sample_every(1);
        assert_eq!(current_context(), None, "no active trace → no context");
        let req = begin_request(4, 5);
        let a = current_context().expect("active trace has context");
        let b = current_context().expect("still active");
        assert_eq!(a.trace_id, b.trace_id, "id is allocated once");
        assert!(a.sampled);
        assert_ne!(a.trace_id, 0);
        req.finish(Outcome {
            level: "full",
            fallback: false,
            k_used: 1,
            m_used: 1,
            fused: 1.0,
        });
        let dump = snapshot();
        assert_eq!(
            dump.recent[0].id, a.trace_id,
            "kept trace reuses the propagated id"
        );
    }

    #[test]
    fn remote_adoption_continues_id_and_exports_spans() {
        let _g = locked();
        set_head_sample_every(u32::MAX); // local head sampling never fires
        let ctx = TraceContext {
            trace_id: 0xfeed_0001,
            parent_span: 2,
            sampled: true,
        };
        let guard = begin_remote(ctx);
        let req = begin_request(9, 10);
        {
            let _s = span("kernel");
        }
        req.finish(Outcome {
            level: "full",
            fallback: false,
            k_used: 3,
            m_used: 4,
            fused: 2.5,
        });
        let exported = guard.finish();
        assert!(
            exported.iter().any(|s| s.name == "remote.request"),
            "export must contain the synthetic root: {exported:?}"
        );
        assert!(exported.iter().any(|s| s.name == "kernel"));
        // The locally-kept trace (head flag via forced sampling) reuses
        // the propagated id.
        let dump = snapshot();
        assert!(dump.recent.iter().any(|t| t.id == ctx.trace_id));
        // Adoption is disarmed after finish.
        let req = begin_request(1, 1);
        let local = current_context().expect("context");
        assert_ne!(local.trace_id, ctx.trace_id);
        drop(req);
    }

    #[test]
    fn remote_unsampled_context_suppresses_span_capture() {
        let _g = locked();
        set_head_sample_every(1); // local sampler would fire...
        let guard = begin_remote(TraceContext {
            trace_id: 77,
            parent_span: 0,
            sampled: false, // ...but the origin said no
        });
        let req = begin_request(2, 3);
        {
            let _s = span("kernel");
        }
        req.finish(Outcome {
            level: "full",
            fallback: false,
            k_used: 1,
            m_used: 1,
            fused: 1.0,
        });
        assert!(guard.finish().is_empty(), "unsampled → nothing exported");
    }

    #[test]
    fn attached_remote_spans_are_kept_and_rendered() {
        let _g = locked();
        set_head_sample_every(1);
        let req = begin_request(21, 22);
        attach_remote_spans(
            "shard1",
            vec![RemoteSpan {
                origin: String::new(),
                name: "remote.request".to_string(),
                start_ns: 0,
                dur_ns: 12_000,
                depth: 0,
            }],
        );
        req.finish(Outcome {
            level: "full",
            fallback: false,
            k_used: 1,
            m_used: 1,
            fused: 3.0,
        });
        let dump = snapshot();
        let t = &dump.recent[0];
        assert_eq!(t.remote_spans.len(), 1);
        assert_eq!(t.remote_spans[0].origin, "shard1");
        let text = render_current();
        assert!(text.contains("remote shard1"), "{text}");
        assert!(text.contains("remote.request"), "{text}");
    }

    #[test]
    fn render_shows_tree_and_attributes() {
        let _g = locked();
        set_head_sample_every(1);
        let req = begin_request(17, 23);
        {
            let _a = span("neighbor_lookup");
        }
        req.finish(Outcome {
            level: "partial_fusion",
            fallback: false,
            k_used: 10,
            m_used: 20,
            fused: 3.5,
        });
        let text = render_current();
        assert!(text.contains("user=17"), "{text}");
        assert!(text.contains("level=partial_fusion"), "{text}");
        assert!(text.contains("neighbor_lookup"), "{text}");
        assert!(text.contains("== slowest"), "{text}");
    }
}
