//! Rating-distribution drift sensors for the self-healing refresh loop.
//!
//! The refresh policy in `cfsf-core::refresh` needs to know whether the
//! *incoming* rating stream still looks like the distribution the model
//! was fitted on. This module keeps a bounded window of the most recent
//! ingested ratings bucketed into a fixed histogram, a baseline histogram
//! captured from the training matrix at (re)fit time, and derives three
//! gauges every caller of [`record_rating`] keeps fresh:
//!
//! - `drift.hist_distance_pm` — total-variation distance (per mille)
//!   between the ingest-window histogram and the baseline;
//! - `drift.ingest.mean_milli` / `drift.ingest.stddev_milli` — first two
//!   moments of the window, milli-rating-units;
//!
//! The policy half (hysteresis, trip/clear thresholds, the rebuild
//! trigger) lives with the model in `cfsf-core::refresh`; this module is
//! deliberately just the sensor so `/stats.json` shows the raw signals
//! even when no refresh loop is attached.

use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::sync::RecoverMutex;

/// Histogram buckets the rating scale is cut into. Eight is enough to
/// tell "everyone suddenly rates 1" from "everyone rates 5" on any scale
/// while keeping the distance numerically stable on small windows.
pub const BUCKETS: usize = 8;

/// Ratings the ingest window holds before the oldest rolls out.
pub const WINDOW: usize = 512;

struct DriftWindow {
    /// Recent ratings' bucket indices, oldest first.
    recent: VecDeque<(u8, f64)>,
    /// Per-bucket counts over `recent` (kept incrementally).
    counts: [u64; BUCKETS],
    /// Baseline per-bucket probabilities from the training matrix.
    baseline: Option<[f64; BUCKETS]>,
    /// Scale the bucketing maps onto (min, max).
    scale: (f64, f64),
}

fn state() -> &'static RecoverMutex<DriftWindow> {
    static S: OnceLock<RecoverMutex<DriftWindow>> = OnceLock::new();
    S.get_or_init(|| {
        RecoverMutex::new(DriftWindow {
            recent: VecDeque::with_capacity(WINDOW),
            counts: [0; BUCKETS],
            baseline: None,
            scale: (1.0, 5.0),
        })
    })
}

fn bucket_of(rating: f64, min: f64, max: f64) -> usize {
    let span = (max - min).max(f64::MIN_POSITIVE);
    let t = ((rating - min) / span).clamp(0.0, 1.0);
    ((t * BUCKETS as f64) as usize).min(BUCKETS - 1)
}

/// Installs the baseline distribution the ingest stream is compared
/// against, from an iterator over the *training* ratings, and remembers
/// the scale used for bucketing. Called by the refresh loop whenever a
/// new generation is published (the freshly merged matrix becomes the
/// new normal). Resets the ingest window: drift is measured against the
/// generation currently serving.
pub fn set_baseline(ratings: impl IntoIterator<Item = f64>, scale_min: f64, scale_max: f64) {
    let mut counts = [0u64; BUCKETS];
    let mut total = 0u64;
    for r in ratings {
        if r.is_finite() {
            counts[bucket_of(r, scale_min, scale_max)] += 1;
            total += 1;
        }
    }
    let mut s = state().lock();
    s.scale = (scale_min, scale_max);
    s.baseline = (total > 0).then(|| {
        let mut p = [0.0; BUCKETS];
        for (b, &c) in p.iter_mut().zip(&counts) {
            *b = c as f64 / total as f64;
        }
        p
    });
    s.recent.clear();
    s.counts = [0; BUCKETS];
    drop(s);
    publish_gauges();
}

/// Feeds one freshly ingested rating into the drift window and refreshes
/// the `drift.*` gauges. Non-finite ratings are ignored (the ingest path
/// validates before calling, so this is belt and braces).
pub fn record_rating(rating: f64) {
    if !crate::enabled() || !rating.is_finite() {
        return;
    }
    {
        let mut s = state().lock();
        let b = bucket_of(rating, s.scale.0, s.scale.1) as u8;
        if s.recent.len() >= WINDOW {
            if let Some((old, _)) = s.recent.pop_front() {
                s.counts[old as usize] = s.counts[old as usize].saturating_sub(1);
            }
        }
        s.recent.push_back((b, rating));
        s.counts[b as usize] += 1;
    }
    publish_gauges();
}

/// Total-variation distance (½ · L1), per mille, between the ingest
/// window and the baseline. `None` until both a baseline and at least
/// one ingested rating exist — the policy layer treats "no signal yet"
/// differently from "distance zero".
pub fn hist_distance_pm() -> Option<i64> {
    let s = state().lock();
    let baseline = s.baseline?;
    let total: u64 = s.counts.iter().sum();
    if total == 0 {
        return None;
    }
    let mut l1 = 0.0;
    for (c, b) in s.counts.iter().zip(&baseline) {
        l1 += (*c as f64 / total as f64 - b).abs();
    }
    Some(((l1 / 2.0) * 1000.0).round() as i64)
}

/// Mean and standard deviation of the ratings currently in the window;
/// `None` while the window is empty.
pub fn window_moments() -> Option<(f64, f64)> {
    let s = state().lock();
    if s.recent.is_empty() {
        return None;
    }
    let n = s.recent.len() as f64;
    let mean = s.recent.iter().map(|&(_, r)| r).sum::<f64>() / n;
    let var = s
        .recent
        .iter()
        .map(|&(_, r)| (r - mean).powi(2))
        .sum::<f64>()
        / n;
    Some((mean, var.sqrt()))
}

/// Ratings currently in the ingest window (tests / diagnostics).
pub fn window_len() -> usize {
    state().lock().recent.len()
}

/// Drops the window and the baseline (tests).
pub fn clear() {
    let mut s = state().lock();
    s.recent.clear();
    s.counts = [0; BUCKETS];
    s.baseline = None;
}

fn publish_gauges() {
    if let Some(d) = hist_distance_pm() {
        crate::gauge!("drift.hist_distance_pm").set(d);
    }
    if let Some((mean, stddev)) = window_moments() {
        crate::gauge!("drift.ingest.mean_milli").set((mean * 1000.0).round() as i64);
        crate::gauge!("drift.ingest.stddev_milli").set((stddev * 1000.0).round() as i64);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// The drift window is process-global; serialize the tests touching
    /// it so parallel test threads cannot interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn identical_distributions_measure_zero_distance() {
        let _serial = serial();
        clear();
        set_baseline((0..100).map(|i| 1.0 + f64::from(i % 5)), 1.0, 5.0);
        for i in 0..100 {
            record_rating(1.0 + f64::from(i % 5));
        }
        assert_eq!(hist_distance_pm(), Some(0));
        clear();
    }

    #[test]
    fn shifted_distribution_is_visible_and_window_stays_bounded() {
        let _serial = serial();
        clear();
        // Baseline: everyone rates mid-scale. Stream: everyone rates max.
        set_baseline(std::iter::repeat_n(3.0, 64), 1.0, 5.0);
        for _ in 0..(WINDOW * 2) {
            record_rating(5.0);
        }
        assert_eq!(window_len(), WINDOW);
        // Disjoint buckets: total-variation distance is the full 1000 pm.
        assert_eq!(hist_distance_pm(), Some(1000));
        let (mean, stddev) = window_moments().unwrap();
        assert!((mean - 5.0).abs() < 1e-12);
        assert!(stddev < 1e-12);
        clear();
    }

    #[test]
    fn no_signal_before_baseline_or_data() {
        let _serial = serial();
        clear();
        assert_eq!(hist_distance_pm(), None);
        record_rating(4.0); // no baseline installed → still no distance
        assert_eq!(hist_distance_pm(), None);
        clear();
        set_baseline([3.0, 4.0], 1.0, 5.0);
        assert_eq!(hist_distance_pm(), None, "baseline alone is no signal");
        clear();
    }

    #[test]
    fn new_baseline_resets_the_window() {
        let _serial = serial();
        clear();
        set_baseline([3.0; 8], 1.0, 5.0);
        for _ in 0..10 {
            record_rating(5.0);
        }
        assert_eq!(window_len(), 10);
        set_baseline([5.0; 8], 1.0, 5.0);
        assert_eq!(window_len(), 0, "a published generation resets drift");
        clear();
    }
}
