//! Rolling online prediction-quality and serving-health gauges.
//!
//! Aggregate counters tell us *what* the server did; this module derives
//! drift-visible gauges from them so the `/metrics` endpoint shows, on
//! one scrape, whether prediction quality or serving health is moving:
//!
//! - [`observe_prediction_error`] — the incremental ingestion path calls
//!   this when a ground-truth rating arrives for a (user, item) the model
//!   could already predict. A bounded window of recent absolute errors
//!   maintains a **windowed online MAE** gauge
//!   (`online.quality.window_mae_milli`, milli-rating-units so the
//!   integer gauge keeps 3 decimals).
//! - [`refresh_derived_gauges`] — folds the global counters into rate
//!   gauges: neighbor-cache hit ratio, degradation fallback rate and
//!   per-rung serve rates, all per-mille. Called by the telemetry server
//!   before each scrape and by the CLI before `--stats` output, so the
//!   gauges are always coherent with the counters next to them.

use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::sync::RecoverMutex;

/// Number of recent observations the MAE window holds.
pub const WINDOW: usize = 256;

fn window() -> &'static RecoverMutex<VecDeque<f64>> {
    static W: OnceLock<RecoverMutex<VecDeque<f64>>> = OnceLock::new();
    W.get_or_init(|| RecoverMutex::new(VecDeque::with_capacity(WINDOW)))
}

/// Feeds one |prediction − observed rating| into the rolling window and
/// refreshes the `online.quality.window_mae_milli` gauge. Non-finite
/// errors are counted (`online.quality.rejected`) but excluded from the
/// window.
pub fn observe_prediction_error(abs_err: f64) {
    if !crate::enabled() {
        return;
    }
    if !abs_err.is_finite() {
        crate::counter!("online.quality.rejected").inc();
        return;
    }
    crate::counter!("online.quality.observed").inc();
    let mae = {
        let mut w = window().lock();
        if w.len() >= WINDOW {
            w.pop_front();
        }
        w.push_back(abs_err.abs());
        w.iter().sum::<f64>() / w.len() as f64
    };
    crate::gauge!("online.quality.window_mae_milli").set((mae * 1000.0).round() as i64);
}

/// Observations currently in the MAE window (tests / diagnostics).
pub fn window_len() -> usize {
    window().lock().len()
}

/// Mean absolute error over the current window, or `None` while the
/// window is empty. The drift detector in `cfsf-core::refresh` compares
/// this against the baseline MAE captured when the serving generation
/// was published.
pub fn window_mae() -> Option<f64> {
    let w = window().lock();
    if w.is_empty() {
        return None;
    }
    Some(w.iter().sum::<f64>() / w.len() as f64)
}

/// Empties the MAE window (tests).
pub fn clear_window() {
    window().lock().clear();
}

fn per_mille(part: u64, whole: u64) -> i64 {
    if whole == 0 {
        0
    } else {
        ((part as f64 / whole as f64) * 1000.0).round() as i64
    }
}

/// The degradation-ladder rungs, best first (counter names are
/// `online.degrade.<rung>`).
pub const RUNGS: [&str; 6] = [
    "full",
    "partial_fusion",
    "single_estimator",
    "cluster_smoothed",
    "user_mean",
    "global_mean",
];
/// The rungs counted as the ladder's fallback region.
pub const FALLBACK_RUNGS: [&str; 3] = ["cluster_smoothed", "user_mean", "global_mean"];

/// The derived gauge values implied by `snap`'s counters, as
/// `(name, per-mille value)` pairs — pure, so one counter pass can feed
/// both the registry and the scrape being rendered.
fn derived_from(snap: &crate::Snapshot) -> Vec<(String, i64)> {
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let mut out = Vec::with_capacity(2 + RUNGS.len());

    let hits = c("online.neighbor_cache.hit");
    let misses = c("online.neighbor_cache.miss");
    out.push((
        "online.cache.hit_ratio_pm".to_string(),
        per_mille(hits, hits + misses),
    ));

    let total: u64 = RUNGS
        .iter()
        .map(|r| c(&format!("online.degrade.{r}")))
        .sum();
    let fallback: u64 = FALLBACK_RUNGS
        .iter()
        .map(|r| c(&format!("online.degrade.{r}")))
        .sum();
    out.push((
        "online.degrade.fallback_pm".to_string(),
        per_mille(fallback, total),
    ));
    for rung in RUNGS {
        out.push((
            format!("online.degrade.rate_pm.{rung}"),
            per_mille(c(&format!("online.degrade.{rung}")), total),
        ));
    }
    out
}

/// Computes the derived gauges from `snap`'s own counters and writes them
/// both into the global registry (so other readers stay fresh) and into
/// `snap.gauges` itself. Because the gauge values come from exactly the
/// counters in `snap`, a scrape rendered from it can never show a gauge
/// computed from a newer counter than the one printed next to it.
pub fn apply_derived_gauges(snap: &mut crate::Snapshot) {
    if !crate::enabled() {
        return;
    }
    for (name, v) in derived_from(snap) {
        crate::global().gauge(&name).set(v);
        snap.gauges.insert(name, v);
    }
}

/// One coherent scrape payload: a single counter pass with the derived
/// gauges recomputed from exactly those counters. The telemetry server
/// renders `/metrics` and `/stats.json` from this.
pub fn coherent_snapshot() -> crate::Snapshot {
    let mut snap = crate::global().snapshot();
    apply_derived_gauges(&mut snap);
    snap
}

/// Recomputes the derived health gauges from the global registry's
/// counters:
///
/// - `online.cache.hit_ratio_pm` — neighbor-cache hits per mille of
///   lookups,
/// - `online.degrade.fallback_pm` — requests served from the ladder's
///   fallback region per mille of predictions,
/// - `online.degrade.rate_pm.<rung>` — per-rung serve rates.
pub fn refresh_derived_gauges() {
    let mut snap = crate::global().snapshot();
    apply_derived_gauges(&mut snap);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_mae_tracks_recent_errors_and_stays_bounded() {
        clear_window();
        observe_prediction_error(1.0);
        observe_prediction_error(0.5);
        let g = crate::global().gauge("online.quality.window_mae_milli");
        assert_eq!(g.get(), 750, "MAE of [1.0, 0.5] is 0.75 → 750 milli");

        for _ in 0..(WINDOW * 2) {
            observe_prediction_error(0.2);
        }
        assert_eq!(window_len(), WINDOW, "window must stay bounded");
        assert_eq!(g.get(), 200, "old errors must have rolled out");
        clear_window();
    }

    #[test]
    fn non_finite_errors_are_rejected() {
        clear_window();
        let before = window_len();
        observe_prediction_error(f64::NAN);
        observe_prediction_error(f64::INFINITY);
        assert_eq!(window_len(), before);
        assert!(crate::counter!("online.quality.rejected").get() >= 2);
        clear_window();
    }

    #[test]
    fn coherent_snapshot_gauges_match_its_own_counters() {
        crate::counter!("online.degrade.full").add(5);
        crate::counter!("online.degrade.user_mean").add(2);
        let snap = coherent_snapshot();
        let c = |n: &str| snap.counters.get(n).copied().unwrap_or(0);
        let total: u64 = RUNGS
            .iter()
            .map(|r| c(&format!("online.degrade.{r}")))
            .sum();
        let fallback: u64 = FALLBACK_RUNGS
            .iter()
            .map(|r| c(&format!("online.degrade.{r}")))
            .sum();
        assert_eq!(
            snap.gauges["online.degrade.fallback_pm"],
            per_mille(fallback, total),
            "gauge must be derived from this snapshot's own counters"
        );
        assert_eq!(
            snap.gauges["online.degrade.rate_pm.full"],
            per_mille(c("online.degrade.full"), total)
        );
    }

    #[test]
    fn derived_gauges_compute_per_mille_rates() {
        // Shared global registry: add known deltas, then assert the gauge
        // values are consistent with the *current* counter totals (other
        // tests in this binary may also bump them).
        crate::counter!("online.neighbor_cache.hit").add(9);
        crate::counter!("online.neighbor_cache.miss").add(1);
        crate::counter!("online.degrade.full").add(3);
        crate::counter!("online.degrade.global_mean").add(1);
        refresh_derived_gauges();

        let snap = crate::global().snapshot();
        let hits = snap.counters["online.neighbor_cache.hit"];
        let misses = snap.counters["online.neighbor_cache.miss"];
        assert_eq!(
            snap.gauges["online.cache.hit_ratio_pm"],
            per_mille(hits, hits + misses)
        );
        assert!(snap.gauges["online.degrade.fallback_pm"] > 0);
        assert!(snap.gauges["online.degrade.rate_pm.full"] > 0);
        let covered = snap.gauges["online.degrade.rate_pm.partial_fusion"]
            + snap.gauges["online.degrade.rate_pm.full"]
            + snap.gauges["online.degrade.rate_pm.single_estimator"]
            + snap.gauges["online.degrade.fallback_pm"];
        assert!(
            (covered - 1000).abs() <= 3,
            "rung rates plus fallback must cover all predictions (±rounding): {covered}"
        );
    }
}
