//! # cf-obs — runtime observability for the CFSF system
//!
//! The ROADMAP north-star is a production-scale serving system, and
//! memory-based CF lives or dies by hot-path cost per request — yet the
//! seed had no runtime visibility at all. This crate is the metrics and
//! tracing substrate the rest of the workspace instruments itself with:
//!
//! - [`Counter`] / [`Gauge`] — single atomics, relaxed ordering,
//! - [`Histogram`] — log-bucketed (8 sub-buckets per octave, ≤ 12.5%
//!   relative error) with lock-free recording and p50/p95/p99 snapshots,
//! - [`SpanTimer`] — RAII guard feeding a named latency histogram,
//! - [`Registry`] — process-global, name-keyed; handles are `Arc`s so the
//!   hot path never touches the registry lock (see the [`counter!`],
//!   [`gauge!`], [`histogram!`] macros, which cache the handle in a
//!   per-call-site `OnceLock`),
//! - JSON serialization of a full snapshot ([`Snapshot::to_json`]) plus a
//!   `results/`-compatible file writer ([`write_snapshot_file`]) so perf
//!   trajectories can be tracked across PRs.
//!
//! Everything is `std`-only and safe code. Instrumentation cost when
//! metrics are *disabled* ([`set_enabled`]) is one relaxed atomic load
//! and a branch per record call; the `noop` cargo feature compiles even
//! that away. `crates/bench/benches/obs_overhead.rs` demonstrates the
//! enabled-vs-disabled delta on the online path stays within a few
//! percent.
//!
//! ## Reading a snapshot
//!
//! ```
//! cf_obs::counter!("demo.requests").inc();
//! cf_obs::histogram!("demo.latency_ns").record(1_250);
//! let snap = cf_obs::global().snapshot();
//! assert_eq!(snap.counters["demo.requests"], 1);
//! let json = snap.to_json();
//! assert!(json.contains("\"demo.latency_ns\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::sync::RecoverMutex;
use std::time::{Duration, Instant};

pub mod drift;
pub mod json;
pub mod merge;
pub mod net;
pub mod prom;
pub mod quality;
pub mod reservoir;
pub mod serve;
pub mod slo;
pub mod sync;
pub mod trace;

// --------------------------------------------------------------------------
// Global enable switch
// --------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns all metric recording on or off process-wide. Handles stay valid;
/// a disabled record call is one relaxed load plus a branch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "noop")]
    {
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

// --------------------------------------------------------------------------
// Counter / Gauge
// --------------------------------------------------------------------------

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zeroed counter (registry-independent use is fine).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement (stored as `i64`).
#[derive(Debug, Default)]
pub struct Gauge {
    /// Bit-stored i64.
    value: AtomicU64,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v as u64, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed) as i64
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

/// Sub-buckets per octave: 3 bits → relative quantile error ≤ 1/8.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Values below `2^(SUB_BITS + 1)` get exact unit buckets.
const LINEAR_LIMIT: u64 = SUB * 2;
const NUM_BUCKETS: usize = (LINEAR_LIMIT + (64 - SUB_BITS - 1) as u64 * SUB) as usize;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    // v ≥ 16: bit length b ≥ 5; top SUB_BITS bits after the leading one.
    let b = 63 - v.leading_zeros(); // v in [2^b, 2^(b+1))
    let sub = (v >> (b - SUB_BITS)) & (SUB - 1);
    LINEAR_LIMIT as usize + ((b - SUB_BITS - 1) as usize) * SUB as usize + sub as usize
}

/// Midpoint of the value range covered by `idx` — the representative
/// value quantile estimation reports.
fn bucket_mid(idx: usize) -> u64 {
    if (idx as u64) < LINEAR_LIMIT {
        return idx as u64;
    }
    let rel = idx - LINEAR_LIMIT as usize;
    let b = (rel / SUB as usize) as u32 + SUB_BITS + 1;
    let sub = (rel % SUB as usize) as u64;
    let lo = (1u64 << b) + (sub << (b - SUB_BITS));
    let width = 1u64 << (b - SUB_BITS);
    lo + width / 2
}

/// A lock-free log-bucketed histogram of `u64` samples (typically
/// nanoseconds). Recording is a handful of relaxed atomic RMWs; snapshots
/// fold the buckets into count/sum/min/max and p50/p95/p99.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p99", &s.p99)
            .finish_non_exhaustive()
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample, 0 when empty.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median estimate (≤ 12.5% relative error, clamped to `[min, max]`).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// 99.9th-percentile estimate — the fleet SLO quantile.
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Folds the buckets into a summary. Concurrent recording makes the
    /// snapshot approximate (fields may lag each other by a few samples),
    /// which is fine for telemetry.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.buckets().summary()
    }

    /// Reads the raw per-bucket counts — the exactly-mergeable form
    /// fleet aggregation ships over the wire (see [`merge`]).
    pub fn buckets(&self) -> HistogramBuckets {
        HistogramBuckets {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// The number of log buckets every [`Histogram`] uses. The layout is a
/// compile-time constant (`SUB_BITS` sub-buckets per octave plus a linear
/// prefix), so two histograms from different processes always share bucket
/// boundaries — bucket-wise addition is an *exact* merge.
pub fn histogram_bucket_count() -> usize {
    NUM_BUCKETS
}

/// Raw per-bucket counts plus the scalar totals of one [`Histogram`] —
/// the mergeable snapshot form. Unlike [`HistogramSnapshot`] (which folds
/// to quantiles and cannot be combined), two `HistogramBuckets` from
/// different processes merge exactly: bucket boundaries are deterministic,
/// so addition per bucket loses nothing the single-process histogram had.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramBuckets {
    /// Per-bucket sample counts, length [`histogram_bucket_count`].
    pub counts: Vec<u64>,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample; `u64::MAX` when empty.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for HistogramBuckets {
    fn default() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramBuckets {
    /// A fresh empty bucket set (identity element for [`merge`](Self::merge)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `other` into `self`, bucket-wise. Exact: the result is
    /// bit-identical to a histogram that had recorded both sample streams.
    pub fn merge(&mut self, other: &Self) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        // The live recorder's `fetch_add` wraps on overflow, so the
        // merged sum must wrap too to stay bit-identical to a single
        // histogram that observed every shard's samples.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples at or above `threshold`, counted bucket-wise (a bucket
    /// counts as "over" when its entire range is ≥ the threshold's
    /// bucket). This is how the SLO engine turns a latency histogram into
    /// a good/bad event counter without per-sample data.
    pub fn count_over(&self, threshold: u64) -> u64 {
        let first_bad = bucket_index(threshold);
        self.counts.iter().skip(first_bad + 1).sum()
    }

    /// Folds the buckets into the quantile summary form.
    pub fn summary(&self) -> HistogramSnapshot {
        if self.count == 0 {
            return HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p95: 0,
                p99: 0,
                p999: 0,
            };
        }
        let (min, max) = (self.min, self.max);
        let total: u64 = self.counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            let target = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (idx, &c) in self.counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return bucket_mid(idx).clamp(min, max);
                }
            }
            max
        };
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min,
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            p999: quantile(0.999),
        }
    }
}

// --------------------------------------------------------------------------
// Timers
// --------------------------------------------------------------------------

/// RAII guard: measures from construction to drop and records the elapsed
/// nanoseconds into its histogram. Construct via [`Registry::span`] or the
/// [`time_scope!`] macro.
pub struct SpanTimer {
    hist: Arc<Histogram>,
    /// `None` when the registry was disabled at construction: a disabled
    /// timer never reads the clock, so the whole guard costs one relaxed
    /// load at creation and one branch at drop.
    start: Option<Instant>,
}

impl SpanTimer {
    /// Starts a timer feeding `hist` on drop. When metrics are disabled
    /// the guard is inert — no `Instant::now()` on either end.
    pub fn new(hist: Arc<Histogram>) -> Self {
        Self {
            hist,
            start: enabled().then(Instant::now),
        }
    }

    /// Stops early and records, consuming the guard.
    pub fn stop(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record_duration(start.elapsed());
        }
    }
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

/// A name-keyed collection of metrics. Lookup takes a mutex; recording
/// through the returned `Arc` handles is lock-free — cache handles at the
/// call site (the [`counter!`]-family macros do this automatically).
#[derive(Debug, Default)]
pub struct Registry {
    counters: RecoverMutex<BTreeMap<String, Arc<Counter>>>,
    gauges: RecoverMutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: RecoverMutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Everything a [`Registry`] held at one point in time.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Registry {
    /// A fresh empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Starts a [`SpanTimer`] feeding the histogram named `name`.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::new(self.histogram(name))
    }

    /// Zeroes every registered metric *in place* — existing handles (and
    /// the macros' cached ones) stay valid.
    pub fn reset(&self) {
        for c in self.counters.lock().values() {
            c.reset();
        }
        for g in self.gauges.lock().values() {
            g.reset();
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
    }

    /// Reads every metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-global registry all instrumentation in the workspace
/// records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Snapshot {
    /// Serializes the snapshot as pretty-printed JSON — the payload the
    /// CLI's `--stats` flag dumps and [`write_snapshot_file`] persists.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }

    /// Like [`to_json`](Self::to_json) but splices extra top-level keys
    /// whose values are pre-rendered raw JSON — the hook the fleet
    /// aggregator uses to add a `"fleet"` section to `/stats.json`
    /// without `cf_obs` knowing anything about routers.
    pub fn to_json_with(&self, extra: &[(&str, &str)]) -> String {
        let mut w = json::Writer::new();
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (k, v) in &self.counters {
            w.key(k);
            w.number_u64(*v);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (k, v) in &self.gauges {
            w.key(k);
            w.number_i64(*v);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (k, h) in &self.histograms {
            w.key(k);
            w.begin_object();
            w.key("count");
            w.number_u64(h.count);
            w.key("sum");
            w.number_u64(h.sum);
            w.key("min");
            w.number_u64(h.min);
            w.key("max");
            w.number_u64(h.max);
            w.key("mean");
            w.number_f64(h.mean());
            w.key("p50");
            w.number_u64(h.p50);
            w.key("p95");
            w.number_u64(h.p95);
            w.key("p99");
            w.number_u64(h.p99);
            w.key("p999");
            w.number_u64(h.p999);
            w.end_object();
        }
        w.end_object();
        for (k, raw) in extra {
            w.key(k);
            w.raw(raw);
        }
        w.end_object();
        w.finish()
    }
}

/// Writes the global registry's snapshot as JSON to `path` (parent
/// directories created), e.g. `results/obs_snapshot.json` — the
/// `results/`-compatible writer future PRs track perf trajectories with.
pub fn write_snapshot_file(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, global().snapshot().to_json())
}

// --------------------------------------------------------------------------
// Call-site macros
// --------------------------------------------------------------------------

/// The global counter `$name`, with the `Arc` handle cached at the call
/// site so the registry lock is taken once per site, not per event.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::Counter>> =
            std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::global().counter($name))
            .as_ref()
    }};
}

/// The global gauge `$name` (call-site cached, see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::Gauge>> =
            std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::global().gauge($name))
            .as_ref()
    }};
}

/// The global histogram `$name` (call-site cached, see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::Histogram>> =
            std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::global().histogram($name))
            .as_ref()
    }};
}

/// Times the rest of the enclosing scope into the global histogram
/// `$name` (RAII; records on scope exit, panics included).
#[macro_export]
macro_rules! time_scope {
    ($name:expr) => {
        let __cf_obs_span = {
            static HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::Histogram>> =
                std::sync::OnceLock::new();
            $crate::SpanTimer::new(std::sync::Arc::clone(
                HANDLE.get_or_init(|| $crate::global().histogram($name)),
            ))
        };
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(-17);
        assert_eq!(g.get(), -17);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_index_is_monotone_and_mid_is_within_error() {
        // Exhaustive over the small range, then sampled octave edges: the
        // probe values must themselves be increasing for the check to mean
        // anything.
        let mut values: Vec<u64> = (0..4096).collect();
        for shift in 12..60u32 {
            values.extend([(1u64 << shift) - 1, 1 << shift, (1 << shift) + 7]);
        }
        let mut last = 0usize;
        for &v in &values {
            let idx = bucket_index(v);
            assert!(idx >= last, "index must not decrease at {v}");
            last = idx;
            let mid = bucket_mid(idx);
            let err = (mid as f64 - v as f64).abs() / v.max(1) as f64;
            assert!(err <= 0.20, "value {v}: mid {mid}, err {err}");
        }
        const { assert!(NUM_BUCKETS < 520) };
    }

    #[test]
    fn histogram_snapshot_quantiles_are_bounded_by_min_max() {
        let h = Histogram::new();
        for v in [3u64, 10, 100, 1_000, 10_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 100_000);
        assert_eq!(s.sum, 111_113);
        for q in [s.p50, s.p95, s.p99] {
            assert!(q >= s.min && q <= s.max, "quantile {q} outside [min,max]");
        }
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99),
            (0, 0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_approximate_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let within =
            |est: u64, truth: u64| (est as f64 - truth as f64).abs() / truth as f64 <= 0.15;
        assert!(within(s.p50, 5_000), "p50 {}", s.p50);
        assert!(within(s.p95, 9_500), "p95 {}", s.p95);
        assert!(within(s.p99, 9_900), "p99 {}", s.p99);
    }

    #[test]
    fn registry_reuses_handles_and_resets_in_place() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(7);
        assert_eq!(b.get(), 7);
        r.reset();
        assert_eq!(a.get(), 0, "reset must zero the shared metric in place");
    }

    #[test]
    fn snapshot_json_contains_all_sections() {
        let r = Registry::new();
        r.counter("hits").add(2);
        r.gauge("depth").set(-4);
        r.histogram("lat\"ency").record(77);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"hits\": 2"));
        assert!(json.contains("\"depth\": -4"));
        assert!(
            json.contains("\"lat\\\"ency\""),
            "keys must be escaped: {json}"
        );
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn span_timer_records_on_drop() {
        let r = Registry::new();
        {
            let _t = r.span("scope_ns");
            std::thread::sleep(Duration::from_millis(2));
        }
        let s = r.histogram("scope_ns").snapshot();
        assert_eq!(s.count, 1);
        assert!(s.min >= 1_000_000, "recorded {} ns, expected >= 1ms", s.min);
    }
}
