//! The global enable switch, exercised in its own process: lib unit tests
//! run threads in parallel, and flipping the process-wide flag there
//! would race every other recording test.

use cf_obs::{set_enabled, Counter, Gauge, Histogram, Registry, SpanTimer};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The tests below flip the process-wide enable flag; they serialize on
/// this lock (and restore the flag on exit) so they cannot race each
/// other inside this binary.
static FLAG: Mutex<()> = Mutex::new(());

struct EnabledScope(#[allow(dead_code)] MutexGuard<'static, ()>);

fn locked() -> EnabledScope {
    EnabledScope(FLAG.lock().unwrap_or_else(PoisonError::into_inner))
}

impl Drop for EnabledScope {
    fn drop(&mut self) {
        set_enabled(true);
    }
}

#[test]
fn disabled_recording_is_a_noop_and_reenabling_restores_it() {
    let _g = locked();
    let h = Histogram::new();
    let c = Counter::new();
    set_enabled(false);
    h.record(5);
    c.inc();
    assert_eq!(h.snapshot().count, 0);
    assert_eq!(c.get(), 0);
    set_enabled(true);
    h.record(5);
    c.inc();
    assert_eq!(h.snapshot().count, 1);
    assert_eq!(c.get(), 1);
}

#[test]
fn disabled_gauge_and_span_timer_record_nothing() {
    let _g = locked();
    let r = Registry::new();
    set_enabled(false);
    let g = Gauge::new();
    g.set(99);
    assert_eq!(g.get(), 0);
    {
        // A disabled SpanTimer must be inert end-to-end: no clock read at
        // construction, nothing recorded at drop — even if re-enabled
        // mid-flight (it was born disabled).
        let t = SpanTimer::new(r.histogram("toggle.span_ns"));
        set_enabled(true);
        drop(t);
    }
    assert_eq!(
        r.histogram("toggle.span_ns").snapshot().count,
        0,
        "a timer created while disabled must never record"
    );
    set_enabled(true);
    {
        let _t = SpanTimer::new(r.histogram("toggle.span_ns"));
    }
    assert_eq!(r.histogram("toggle.span_ns").snapshot().count, 1);
}

#[test]
fn disabled_tracing_and_quality_feed_record_nothing() {
    let _g = locked();
    set_enabled(false);
    cf_obs::trace::clear();
    cf_obs::quality::clear_window();

    cf_obs::trace::set_head_sample_every(1);
    let req = cf_obs::trace::begin_request(1, 2);
    {
        let _s = cf_obs::trace::span("stage");
    }
    cf_obs::trace::note("anomaly");
    req.finish(cf_obs::trace::Outcome {
        level: "global_mean",
        fallback: true, // would be tail-kept if tracing were live
        k_used: 0,
        m_used: 0,
        fused: 3.0,
    });
    assert!(
        cf_obs::trace::snapshot().is_empty(),
        "disabled registry must suppress trace capture entirely"
    );
    assert!(cf_obs::trace::exemplars().is_empty());

    cf_obs::quality::observe_prediction_error(1.0);
    assert_eq!(
        cf_obs::quality::window_len(),
        0,
        "disabled registry must suppress the quality window"
    );

    set_enabled(true);
    cf_obs::trace::set_head_sample_every(64);
}
