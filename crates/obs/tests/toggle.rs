//! The global enable switch, exercised in its own process: lib unit tests
//! run threads in parallel, and flipping the process-wide flag there
//! would race every other recording test.

use cf_obs::{set_enabled, Counter, Histogram};

#[test]
fn disabled_recording_is_a_noop_and_reenabling_restores_it() {
    let h = Histogram::new();
    let c = Counter::new();
    set_enabled(false);
    h.record(5);
    c.inc();
    assert_eq!(h.snapshot().count, 0);
    assert_eq!(c.get(), 0);
    set_enabled(true);
    h.record(5);
    c.inc();
    assert_eq!(h.snapshot().count, 1);
    assert_eq!(c.get(), 1);
}
