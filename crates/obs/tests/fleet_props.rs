//! Property tests for the fleet-observability primitives: Prometheus
//! name/label hygiene under per-shard labelling, and the exactness of
//! the mergeable histogram wire form.

use cf_obs::merge::MergeSnapshot;
use cf_obs::prom::{
    escape_label_value, format_series, format_summary, normalize_metric_name, unescape_label_value,
};
use cf_obs::{Histogram, Registry};
use proptest::prelude::*;

/// Arbitrary label values, weighted toward the characters that need
/// escaping (backslash, quote, newline) plus control and non-ASCII
/// bytes — the adversarial cases for exposition-format hygiene.
fn arb_label_value() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..100, 0..32).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                0 | 1 => '\\',
                2 | 3 => '"',
                4 | 5 => '\n',
                6 => '\t',
                7 => '\r',
                8 => '\u{0}',
                9 => 'é',
                10 => '→',
                n => char::from_u32(32 + n).unwrap_or('x'),
            })
            .collect()
    })
}

/// Arbitrary dotted cf-obs metric names (`online.request_ns` shaped),
/// plus the odd hostile byte.
fn arb_metric_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..40, 1..24).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                0..=25 => char::from_u32('a' as u32 + c).unwrap_or('a'),
                26..=33 => char::from_u32('0' as u32 + (c - 26)).unwrap_or('0'),
                34 | 35 => '.',
                36 => '_',
                37 => '-',
                38 => ' ',
                _ => '%',
            })
            .collect()
    })
}

proptest! {
    /// Escaping any label value yields a single exposition line and
    /// unescaping inverts it exactly.
    #[test]
    fn label_escape_round_trips(value in arb_label_value()) {
        let escaped = escape_label_value(&value);
        prop_assert!(!escaped.contains('\n'), "escaped value spans lines: {escaped:?}");
        // Every `"` in the escaped form is preceded by a backslash, so
        // the value cannot terminate the label early.
        let bytes = escaped.as_bytes();
        for (i, b) in bytes.iter().enumerate() {
            if *b == b'"' {
                prop_assert!(i > 0 && bytes[i - 1] == b'\\', "unescaped quote in {escaped:?}");
            }
        }
        prop_assert_eq!(unescape_label_value(&escaped), value);
    }

    /// Normalized metric names always match the Prometheus grammar
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*`, whatever the dotted input was.
    #[test]
    fn normalized_names_match_prometheus_grammar(name in arb_metric_name()) {
        let n = normalize_metric_name(&name);
        prop_assert!(!n.is_empty());
        let mut chars = n.chars();
        let first = chars.next().unwrap_or(' ');
        prop_assert!(first.is_ascii_alphabetic() || first == '_' || first == ':', "{n}");
        prop_assert!(
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad byte in {n}"
        );
    }

    /// A per-shard labelled series renders as one well-formed line whose
    /// label values round-trip through the escaper.
    #[test]
    fn labelled_series_lines_are_well_formed(
        name in arb_metric_name(),
        shard in 0u32..1024,
        generation in arb_label_value(),
        value in 0u64..u64::MAX,
    ) {
        let shard_s = shard.to_string();
        let line = format_series(
            &format!("fleet.{name}"),
            &[("shard", shard_s.as_str()), ("generation", generation.as_str())],
            value,
        );
        prop_assert!(line.ends_with('\n'));
        prop_assert!(line.matches('\n').count() == 1, "{line}");
        let body = line.trim_end();
        let open = body.find('{').unwrap_or(0);
        let normalized = normalize_metric_name(&format!("fleet.{name}"));
        prop_assert_eq!(&body[..open], normalized.as_str());
        prop_assert!(body.contains(&format!("shard=\"{shard}\"")), "{body}");
        // The generation label value must unescape back to the input;
        // the closing `"}` of the series is the last in the line, since
        // every quote inside the escaped value is backslash-prefixed.
        let tag = "generation=\"";
        let start = body.find(tag).unwrap_or(0) + tag.len();
        let end = body.rfind("\"}").unwrap_or(body.len());
        prop_assert!(start <= end, "{body}");
        prop_assert_eq!(unescape_label_value(&body[start..end]), generation);
        prop_assert!(body.ends_with(&format!(" {value}")), "{body}");
    }

    /// The acceptance identity for fleet aggregation: merging per-shard
    /// snapshots yields histograms bit-exactly equal, bucket for bucket,
    /// to one histogram that observed every shard's samples — and the
    /// stats wire encoding preserves that exactly.
    #[test]
    fn merged_histograms_equal_bucketwise_sum(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..u64::MAX, 0..200),
            1..6,
        ),
    ) {
        let combined = Histogram::new();
        let mut merged = MergeSnapshot::default();
        let mut count_sum = 0u64;
        for samples in &shards {
            let reg = Registry::new();
            let h = reg.histogram("online.request_ns");
            for &v in samples {
                h.record(v);
                combined.record(v);
            }
            count_sum += samples.len() as u64;
            // Round-trip through the stats wire form, as the router does.
            let wire = MergeSnapshot::of(&reg).to_bytes();
            let decoded = match MergeSnapshot::from_bytes(&wire) {
                Ok(d) => d,
                Err(e) => return Err(format!("wire round trip failed: {e}")),
            };
            prop_assert_eq!(&decoded, &MergeSnapshot::of(&reg));
            merged.merge(&decoded);
        }
        let got = &merged.histograms["online.request_ns"];
        prop_assert_eq!(got, &combined.buckets());
        prop_assert_eq!(got.count, count_sum);
        // The folded quantile summary agrees too, so the router's
        // /metrics rendering of the merged histogram is the one a single
        // process would have produced.
        prop_assert_eq!(got.summary(), combined.snapshot());
        let rendered = format_summary("fleet.online.request_ns", &[], &got.summary());
        prop_assert!(
            rendered.contains(&format!("cfsf_fleet_online_request_ns_count {count_sum}")),
            "{rendered}"
        );
    }

    /// Counters add under merge, shard by shard, in any order.
    #[test]
    fn merged_counters_are_order_independent_sums(
        counts in proptest::collection::vec(0u64..1_000_000, 1..6),
    ) {
        let snaps: Vec<MergeSnapshot> = counts
            .iter()
            .map(|&c| {
                let reg = Registry::new();
                reg.counter("online.predictions").add(c);
                MergeSnapshot::of(&reg)
            })
            .collect();
        let mut forward = MergeSnapshot::default();
        for s in &snaps {
            forward.merge(s);
        }
        let mut backward = MergeSnapshot::default();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(forward.counters["online.predictions"], total);
        prop_assert_eq!(forward, backward);
    }
}
