//! Concurrency guarantees: relaxed atomics lose nothing under contention,
//! and snapshots taken after the dust settles are exact.

use cf_obs::{global, Counter, Histogram};

#[test]
fn concurrent_counter_increments_sum_exactly() {
    let c = Counter::new();
    let threads = 8;
    let per_thread = 50_000u64;
    cf_parallel::par_map(threads, threads, |_| {
        for _ in 0..per_thread {
            c.inc();
        }
    });
    assert_eq!(c.get(), threads as u64 * per_thread);
}

#[test]
fn concurrent_histogram_records_lose_no_samples() {
    let h = Histogram::new();
    let threads = 8;
    let per_thread = 20_000u64;
    cf_parallel::par_map(threads, threads, |t| {
        for k in 0..per_thread {
            // Spread values across several octaves so many buckets contend.
            h.record((t as u64 + 1) * 1000 + k % 997);
        }
    });
    let s = h.snapshot();
    assert_eq!(s.count, threads as u64 * per_thread);
    assert_eq!(s.min, 1000);
    assert_eq!(s.max, 8000 + 996);
    for q in [s.p50, s.p95, s.p99] {
        assert!(q >= s.min && q <= s.max, "quantile {q} outside [min, max]");
    }
}

#[test]
fn concurrent_macro_callers_share_one_registry_entry() {
    let threads = 8;
    let per_thread = 10_000u64;
    cf_parallel::par_map(threads, threads, |_| {
        for _ in 0..per_thread {
            cf_obs::counter!("test.concurrent.hits").inc();
        }
    });
    let snap = global().snapshot();
    assert_eq!(
        snap.counters["test.concurrent.hits"],
        threads as u64 * per_thread
    );
}
