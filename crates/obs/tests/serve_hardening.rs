//! Regression tests for the hardened telemetry socket loop: the three
//! client shapes that used to corrupt it — slow (byte-at-a-time) heads,
//! stalled half-heads, and oversized heads — must now get `200`, `408`,
//! and `431` respectively, and none of them may wedge the accept loop.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use cf_obs::serve::MetricsServer;

/// Reads one HTTP response (status line + headers + sized body).
fn read_response(stream: TcpStream) -> (String, String) {
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).expect("status line");
    let mut content_len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_len = v;
        }
    }
    let mut body = vec![0u8; content_len];
    reader.read_exact(&mut body).expect("body");
    (status.trim().to_string(), String::from_utf8(body).unwrap())
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .expect("write");
    read_response(stream)
}

#[test]
fn slow_client_byte_at_a_time_still_gets_200() {
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    for b in b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" {
        stream.write_all(&[*b]).expect("write byte");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, body) = read_response(stream);
    assert!(status.contains("200"), "slow client got: {status}");
    assert!(body.contains("cfsf_"), "not a metrics body: {body:.60}");
}

#[test]
fn stalled_client_gets_408_and_the_loop_keeps_serving() {
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let before_408 = cf_obs::global().counter("obs.serve.responses.408").get();

    // Send half a head, then hang. The server must answer 408 within its
    // head deadline instead of blocking forever or routing the prefix.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /metrics HT").expect("half head");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let (status, _body) = read_response(stream);
    assert!(status.contains("408"), "stalled client got: {status}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "408 took {:?} — timeout not armed?",
        started.elapsed()
    );
    assert!(
        cf_obs::global().counter("obs.serve.responses.408").get() > before_408,
        "408 must be counted in the response breakdown"
    );

    // The accept loop survived the stall: a normal request still works.
    let (status, body) = get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("cfsf_"));
}

#[test]
fn oversized_head_gets_431_not_routed() {
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let before = cf_obs::global().counter("obs.serve.responses.431").get();

    let mut stream = TcpStream::connect(addr).expect("connect");
    // > MAX_REQUEST_BYTES (8 KiB) with no terminator: must be rejected,
    // not silently truncated into a routable request line.
    let huge = vec![b'A'; 9 * 1024];
    stream.write_all(&huge).expect("oversized head");
    let (status, _body) = read_response(stream);
    assert!(status.contains("431"), "oversized head got: {status}");
    assert!(cf_obs::global().counter("obs.serve.responses.431").get() > before);

    let (status, _) = get(addr, "/stats.json");
    assert!(status.contains("200"), "{status}");
}

#[test]
fn half_closed_partial_head_gets_400() {
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /metrics").expect("partial head");
    // FIN the write half: the server sees EOF mid-head but can still
    // answer on the read half.
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let (status, _body) = read_response(stream);
    assert!(status.contains("400"), "truncated head got: {status}");
}

#[test]
fn requests_counter_covers_error_responses_too() {
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let requests = || cf_obs::global().counter("obs.serve.requests").get();

    let before = requests();
    let (status, _) = get(addr, "/definitely-not-a-route");
    assert!(status.contains("404"), "{status}");
    assert!(
        requests() > before,
        "a 404 must still count as a served request"
    );

    let before = requests();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /st").expect("partial");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let (status, _) = read_response(stream);
    assert!(status.contains("400"), "{status}");
    assert!(
        requests() > before,
        "a 400 must still count as a served request"
    );
}
