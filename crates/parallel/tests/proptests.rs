//! Property-based tests: the parallel primitives must be observationally
//! identical to their sequential counterparts for any input shape.

use proptest::prelude::*;

proptest! {
    #[test]
    fn par_map_equals_sequential_map(n in 0usize..500, threads in 1usize..12, salt in 0u64..1000) {
        let f = |i: usize| i as u64 * 31 + salt;
        let par = cf_parallel::par_map(n, threads, f);
        let seq: Vec<u64> = (0..n).map(f).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_reduce_equals_sequential_fold(n in 0usize..500, threads in 1usize..12) {
        let par = cf_parallel::par_reduce(n, threads, || 0u64, |i| (i * i) as u64, |a, b| a + b);
        let seq: u64 = (0..n).map(|i| (i * i) as u64).sum();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_for_each_mut_equals_sequential(len in 0usize..400, threads in 1usize..12) {
        let mut par: Vec<usize> = vec![0; len];
        cf_parallel::par_for_each_mut(&mut par, threads, |i, x| *x = i.wrapping_mul(7) ^ 3);
        let seq: Vec<usize> = (0..len).map(|i| i.wrapping_mul(7) ^ 3).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_reduce_string_concat_preserves_order(n in 0usize..60, threads in 1usize..8) {
        // associative but NOT commutative: order must be preserved
        let par = cf_parallel::par_reduce(
            n,
            threads,
            String::new,
            |i| format!("{i},"),
            |a, b| a + &b,
        );
        let seq: String = (0..n).map(|i| format!("{i},")).collect();
        prop_assert_eq!(par, seq);
    }
}
