//! # cf-parallel — minimal data-parallel toolkit
//!
//! The CFSF offline phase builds a 1000×1000 item-similarity matrix and
//! runs K-means over user profiles; both are embarrassingly parallel. The
//! allowed dependency set for this reproduction has no `rayon`, so this
//! crate provides the small slice of it the workspace needs, built on
//! `std::thread::scope` and a `std::sync::mpsc` channel:
//!
//! - [`par_map`] — dynamically scheduled parallel map over an index range,
//! - [`par_map_isolated`] — like [`par_map`], but a panic in one item is
//!   caught and yields `None` for that item alone (request isolation for
//!   serving paths),
//! - [`par_for_each_mut`] — statically chunked parallel mutation of a slice,
//! - [`par_reduce`] — parallel map + associative fold,
//! - [`join`] — run two closures on two threads,
//! - [`effective_threads`] — thread-count policy (request → env → cores).
//!
//! Everything is safe code; results are deterministic for deterministic
//! closures (outputs are reassembled in index order regardless of which
//! worker computed them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable that caps worker threads for the whole workspace.
pub const THREADS_ENV: &str = "CF_THREADS";

/// Resolves the number of worker threads to use.
///
/// Priority: an explicit `requested` value, then the `CF_THREADS`
/// environment variable, then `std::thread::available_parallelism()`.
/// Always at least 1.
pub fn effective_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Picks a chunk size giving each thread several chunks to balance over,
/// with a floor so tiny work items aren't dominated by scheduling overhead.
fn chunk_size_for(n: usize, threads: usize) -> usize {
    (n / (threads * 8)).max(1)
}

/// Parallel map over `0..n`, dynamically scheduled in chunks.
///
/// Returns `vec![f(0), f(1), .., f(n-1)]`, identical to the sequential map
/// for any deterministic `f`. Worker panics propagate to the caller.
///
/// ```
/// let squares = cf_parallel::par_map(100, 4, |i| i * i);
/// assert_eq!(squares[7], 49);
/// ```
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = chunk_size_for(n, threads);
    let num_chunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<T>)>();

    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let f = &f;
            let next = &next;
            s.spawn(move || loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    break;
                }
                let lo = c * chunk;
                let hi = (lo + chunk).min(n);
                let vals: Vec<T> = (lo..hi).map(f).collect();
                // The receiver outlives the workers, so a send can only
                // fail after a panic elsewhere; swallowing the error lets
                // the scope surface the original panic instead.
                let _ = tx.send((c, vals));
            });
        }
        drop(tx);
        let mut parts: Vec<Option<Vec<T>>> = (0..num_chunks).map(|_| None).collect();
        for (c, vals) in rx {
            parts[c] = Some(vals);
        }
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p.expect("worker panicked before finishing its chunk"));
        }
        out
    })
}

/// Like [`par_map`], but isolates per-item panics: a panic while
/// computing `f(i)` is caught with `catch_unwind` and surfaces as `None`
/// in slot `i`; every other item still produces its value. This is the
/// serving-path variant — one poisoned request must degrade that request,
/// not take down the batch (let alone the process).
///
/// `f` is wrapped in `AssertUnwindSafe`: it is shared by reference across
/// workers, so a panic cannot leave *this* function's state torn, and any
/// interior-mutable state the closure touches is the caller's contract —
/// the intended callers are read-only prediction closures over a fitted
/// model (whose caches recover from poisoning on their own).
///
/// ```
/// let out = cf_parallel::par_map_isolated(4, 2, |i| {
///     if i == 2 { panic!("bad row") }
///     i * 10
/// });
/// assert_eq!(out, vec![Some(0), Some(10), None, Some(30)]);
/// ```
pub fn par_map_isolated<T, F>(n: usize, threads: usize, f: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let f = &f;
    par_map(n, threads, move |i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).ok()
    })
}

/// Parallel in-place mutation of a slice, statically chunked.
///
/// `f` receives the element's index and a mutable reference. Chunks are
/// contiguous, so false sharing is limited to chunk boundaries.
///
/// ```
/// let mut v = vec![0usize; 64];
/// cf_parallel::par_for_each_mut(&mut v, 4, |i, x| *x = i * 2);
/// assert_eq!(v[10], 20);
/// ```
pub fn par_for_each_mut<T, F>(data: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = data.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n <= 1 {
        for (i, x) in data.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (c, part) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = c * chunk;
                for (k, x) in part.iter_mut().enumerate() {
                    f(base + k, x);
                }
            });
        }
    });
}

/// Parallel map-reduce over `0..n` with an associative `fold`.
///
/// Each chunk folds locally starting from `identity()`; the caller then
/// folds the per-chunk results *in chunk order*, so the result is
/// deterministic whenever `fold` is associative (it need not be
/// commutative, and floating-point summation stays reproducible run to
/// run).
///
/// ```
/// let sum = cf_parallel::par_reduce(1000, 4, || 0u64, |i| i as u64, |a, b| a + b);
/// assert_eq!(sum, 499_500);
/// ```
pub fn par_reduce<T, Id, M, F>(n: usize, threads: usize, identity: Id, map: M, fold: F) -> T
where
    T: Send,
    Id: Fn() -> T + Sync,
    M: Fn(usize) -> T + Sync,
    F: Fn(T, T) -> T + Sync,
{
    if n == 0 {
        return identity();
    }
    let threads = threads.clamp(1, n);
    let chunk = chunk_size_for(n, threads);
    let num_chunks = n.div_ceil(chunk);
    let parts = par_map(num_chunks, threads, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        let mut acc = identity();
        for i in lo..hi {
            acc = fold(acc, map(i));
        }
        acc
    });
    let mut acc = identity();
    for part in parts {
        acc = fold(acc, part);
    }
    acc
}

/// Runs `a` and `b` concurrently and returns both results.
///
/// ```
/// let (x, y) = cf_parallel::join(|| 2 + 2, || "ok");
/// assert_eq!((x, y), (4, "ok"));
/// ```
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("join: second closure panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let seq: Vec<usize> = (0..1000).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                par_map(1000, threads, |i| i * 3 + 1),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_empty_and_tiny() {
        assert!(par_map(0, 4, |i| i).is_empty());
        assert_eq!(par_map(1, 4, |i| i + 7), vec![7]);
        assert_eq!(par_map(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn par_map_with_nontrivial_payloads() {
        let out = par_map(100, 4, |i| vec![i; i % 5]);
        assert_eq!(out[9], vec![9; 4]);
        assert_eq!(out.len(), 100);
    }

    #[test]
    #[should_panic]
    fn par_map_propagates_worker_panic() {
        let _ = par_map(100, 4, |i| {
            if i == 57 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn par_map_isolated_turns_panics_into_none() {
        for threads in [1, 4] {
            let out = par_map_isolated(100, threads, |i| {
                if i % 30 == 7 {
                    panic!("poisoned row {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 100);
            for (i, v) in out.iter().enumerate() {
                if i % 30 == 7 {
                    assert!(v.is_none(), "panicked item {i} must be None");
                } else {
                    assert_eq!(*v, Some(i * 2), "item {i}");
                }
            }
        }
    }

    #[test]
    fn par_map_isolated_without_panics_matches_par_map() {
        let a = par_map_isolated(257, 4, |i| i + 1);
        assert!(a.iter().enumerate().all(|(i, v)| *v == Some(i + 1)));
    }

    #[test]
    fn par_for_each_mut_touches_every_index_once() {
        let mut v = vec![0u32; 777];
        par_for_each_mut(&mut v, 5, |i, x| *x += i as u32 + 1);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u32 + 1);
        }
    }

    #[test]
    fn par_for_each_mut_handles_empty() {
        let mut v: Vec<u8> = vec![];
        par_for_each_mut(&mut v, 4, |_, _| unreachable!());
    }

    #[test]
    fn par_reduce_sums_correctly() {
        for threads in [1, 2, 7] {
            let s = par_reduce(12345, threads, || 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(s, 12345 * 12344 / 2, "threads={threads}");
        }
    }

    #[test]
    fn par_reduce_empty_returns_identity() {
        let s = par_reduce(0, 4, || 41u64, |_| 1, |a, b| a + b);
        assert_eq!(s, 41);
    }

    #[test]
    fn par_reduce_is_order_preserving_for_associative_noncommutative_fold() {
        // String concatenation is associative but not commutative.
        let s = par_reduce(
            26,
            4,
            String::new,
            |i| char::from(b'a' + i as u8).to_string(),
            |a, b| a + &b,
        );
        assert_eq!(s, "abcdefghijklmnopqrstuvwxyz");
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| (0..10).sum::<i32>(), || "done".to_string());
        assert_eq!(a, 45);
        assert_eq!(b, "done");
    }

    #[test]
    fn effective_threads_has_floor_of_one() {
        assert_eq!(effective_threads(Some(0)), 1);
        assert!(effective_threads(None) >= 1);
        assert_eq!(effective_threads(Some(9)), 9);
    }
}
