//! Seeded MovieLens-like synthetic dataset generator.
//!
//! The paper evaluates on a 500-user × 1000-item MovieLens extract where
//! every user rated at least 40 movies (average 94.4, density 9.44%,
//! 5 rating values). That extract cannot be redistributed, so this module
//! generates a matrix with the same statistical structure the algorithms
//! feed on:
//!
//! - **taste groups × genres** — each user belongs to a latent taste
//!   group, each item to a genre; a group↔genre affinity table drives the
//!   systematic part of ratings. This is what gives K-means real cluster
//!   structure to find and makes `SUIR'`-style evidence informative.
//! - **rating-style diversity** — a per-user bias (harsh vs. generous
//!   raters): exactly the diversity the paper's smoothing strategy
//!   removes. A per-item bias models universally (un)popular items, which
//!   is why the paper prefers PCC over raw cosine.
//! - **popularity skew** — users rate popular items more often
//!   (Zipf-weighted sampling without replacement), so item co-rating
//!   overlap is heavy-tailed like real MovieLens.
//! - **discrete 1–5 stars** with Gaussian noise before rounding.

use cf_matrix::{ItemId, MatrixBuilder, RatingMatrix, RatingScale, UserId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Dataset, NormalSampler};

/// Parameters of the synthetic generator. Defaults reproduce the paper's
/// Table I shape; [`SyntheticConfig::small`] is a fast variant for tests
/// and doctests.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of users (paper: 500).
    pub num_users: usize,
    /// Number of items (paper: 1000).
    pub num_items: usize,
    /// Latent user taste groups.
    pub taste_groups: usize,
    /// Latent item genres.
    pub genres: usize,
    /// Mean ratings per user (paper: 94.4).
    pub mean_ratings_per_user: f64,
    /// Hard floor on ratings per user (paper: 40).
    pub min_ratings_per_user: usize,
    /// Spread (log-normal sigma) of per-user rating counts.
    pub ratings_per_user_sigma: f64,
    /// Standard deviation of the per-user style bias.
    pub user_bias_sd: f64,
    /// Standard deviation of the per-item quality bias.
    pub item_bias_sd: f64,
    /// Scale of the taste-group × genre affinity signal.
    pub affinity_strength: f64,
    /// Standard deviation of observation noise added before rounding.
    pub noise_sd: f64,
    /// Zipf exponent for item popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Base level ratings center on before biases (≈ global mean).
    pub base_rating: f64,
    /// Rating scale: generated ratings are integers clamped onto it
    /// (MovieLens 1..=5 by default; any `[min, max]` works and flows
    /// through to the matrix's validation).
    pub scale: RatingScale,
    /// RNG seed; same seed ⇒ identical dataset.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self::movielens()
    }
}

impl SyntheticConfig {
    /// The paper-scale dataset: 500 users × 1000 items, ≈94 ratings/user.
    pub fn movielens() -> Self {
        Self {
            num_users: 500,
            num_items: 1000,
            taste_groups: 8,
            genres: 12,
            mean_ratings_per_user: 94.4,
            min_ratings_per_user: 40,
            ratings_per_user_sigma: 0.35,
            user_bias_sd: 0.45,
            item_bias_sd: 0.35,
            affinity_strength: 0.9,
            noise_sd: 0.55,
            zipf_exponent: 0.8,
            base_rating: 3.6,
            scale: RatingScale::one_to_five(),
            seed: 42,
        }
    }

    /// A fast small dataset (80 users × 120 items) for tests and examples.
    pub fn small() -> Self {
        Self {
            num_users: 80,
            num_items: 120,
            taste_groups: 4,
            genres: 6,
            mean_ratings_per_user: 24.0,
            min_ratings_per_user: 12,
            seed: 7,
            ..Self::movielens()
        }
    }

    /// Overrides the seed, keeping everything else.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics if dimensions or group counts are zero, or the floor of
    /// ratings per user exceeds the item count.
    pub fn generate(&self) -> Dataset {
        assert!(self.num_users > 0 && self.num_items > 0, "empty dimensions");
        assert!(
            self.taste_groups > 0 && self.genres > 0,
            "zero latent groups"
        );
        assert!(
            self.min_ratings_per_user <= self.num_items,
            "min ratings per user exceeds item count"
        );

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut normal = NormalSampler::new();

        // Latent structure.
        let affinity: Vec<Vec<f64>> = (0..self.taste_groups)
            .map(|_| {
                (0..self.genres)
                    .map(|_| normal.sample(&mut rng, 0.0, self.affinity_strength))
                    .collect()
            })
            .collect();
        let user_groups: Vec<u32> = (0..self.num_users)
            .map(|_| rng.gen_range(0..self.taste_groups) as u32)
            .collect();
        let user_bias: Vec<f64> = (0..self.num_users)
            .map(|_| normal.sample(&mut rng, 0.0, self.user_bias_sd))
            .collect();
        let item_genres: Vec<u32> = (0..self.num_items)
            .map(|_| rng.gen_range(0..self.genres) as u32)
            .collect();
        let item_bias: Vec<f64> = (0..self.num_items)
            .map(|_| normal.sample(&mut rng, 0.0, self.item_bias_sd))
            .collect();

        // Zipf popularity over a random item permutation, as a cumulative
        // table for weighted sampling.
        let mut popularity_rank: Vec<usize> = (0..self.num_items).collect();
        popularity_rank.shuffle(&mut rng);
        let mut weights = vec![0.0f64; self.num_items];
        for (rank, &item) in popularity_rank.iter().enumerate() {
            weights[item] = 1.0 / ((rank + 1) as f64).powf(self.zipf_exponent);
        }
        let mut cumulative = Vec::with_capacity(self.num_items);
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        let total_weight = acc;

        let ln_mean = self.mean_ratings_per_user.max(1.0).ln()
            - 0.5 * self.ratings_per_user_sigma * self.ratings_per_user_sigma;

        let mut b = MatrixBuilder::with_dims(self.num_users, self.num_items).scale(self.scale);
        let mut chosen = vec![false; self.num_items];
        for u in 0..self.num_users {
            // Log-normal rating count, floored and capped.
            let count = (ln_mean + self.ratings_per_user_sigma * normal.standard(&mut rng))
                .exp()
                .round() as usize;
            let count = count.max(self.min_ratings_per_user).min(self.num_items);

            // Weighted sampling without replacement via rejection on the
            // cumulative table; falls back to a scan when nearly all items
            // are taken (cannot happen at MovieLens densities, but keeps
            // the generator total for any config).
            let mut picked: Vec<usize> = Vec::with_capacity(count);
            let mut attempts = 0usize;
            while picked.len() < count {
                attempts += 1;
                if attempts > 50 * count {
                    for (i, taken) in chosen.iter_mut().enumerate() {
                        if picked.len() >= count {
                            break;
                        }
                        if !*taken {
                            *taken = true;
                            picked.push(i);
                        }
                    }
                    break;
                }
                let x = rng.gen::<f64>() * total_weight;
                let i = cumulative
                    .partition_point(|&c| c < x)
                    .min(self.num_items - 1);
                if !chosen[i] {
                    chosen[i] = true;
                    picked.push(i);
                }
            }
            for &i in &picked {
                chosen[i] = false;
                let g = user_groups[u] as usize;
                let genre = item_genres[i] as usize;
                let signal = self.base_rating
                    + user_bias[u]
                    + item_bias[i]
                    + affinity[g][genre]
                    + normal.sample(&mut rng, 0.0, self.noise_sd);
                let rating = signal.round().clamp(self.scale.min, self.scale.max);
                b.push(UserId::from(u), ItemId::from(i), rating);
            }
        }

        let matrix: RatingMatrix = b
            .build()
            .unwrap_or_else(|e| unreachable!("generator always produces valid ratings: {e}"));
        Dataset {
            name: format!(
                "synthetic-movielens-{}x{}-seed{}",
                self.num_users, self.num_items, self.seed
            ),
            matrix,
            user_groups: Some(user_groups),
            item_genres: Some(item_genres),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_statistics_match_table_one() {
        let d = SyntheticConfig::movielens().generate();
        let s = d.stats();
        assert_eq!(s.num_users, 500);
        assert_eq!(s.num_items, 1000);
        assert_eq!(s.active_users, 500);
        assert!(
            s.min_ratings_per_user >= 40,
            "min {}",
            s.min_ratings_per_user
        );
        assert!(
            (s.avg_ratings_per_user - 94.4).abs() < 12.0,
            "avg {}",
            s.avg_ratings_per_user
        );
        assert!((s.density - 0.0944).abs() < 0.012, "density {}", s.density);
        assert_eq!(s.distinct_rating_values, 5);
        assert_eq!(s.min_rating, 1.0);
        assert_eq!(s.max_rating, 5.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticConfig::small().generate();
        let b = SyntheticConfig::small().generate();
        assert_eq!(a.matrix.num_ratings(), b.matrix.num_ratings());
        let ta: Vec<_> = a.matrix.triplets().collect();
        let tb: Vec<_> = b.matrix.triplets().collect();
        assert_eq!(ta, tb);
        let c = SyntheticConfig::small().with_seed(99).generate();
        let tc: Vec<_> = c.matrix.triplets().collect();
        assert_ne!(ta, tc);
    }

    #[test]
    fn popularity_is_skewed() {
        let d = SyntheticConfig::movielens().generate();
        let mut counts: Vec<usize> = d.matrix.items().map(|i| d.matrix.item_count(i)).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = counts[..100].iter().sum();
        let bottom_decile: usize = counts[900..].iter().sum();
        assert!(
            top_decile > 5 * bottom_decile.max(1),
            "expected heavy head: top {top_decile}, bottom {bottom_decile}"
        );
    }

    #[test]
    fn users_in_same_group_agree_more() {
        let d = SyntheticConfig::small().generate();
        let groups = d.user_groups.as_ref().unwrap();
        let m = &d.matrix;
        let mut same = (0.0, 0usize);
        let mut diff = (0.0, 0usize);
        for a in 0..m.num_users() {
            for b in (a + 1)..m.num_users() {
                let s = cf_similarity_stub::user_pcc_naive(m, a, b);
                if let Some(s) = s {
                    if groups[a] == groups[b] {
                        same.0 += s;
                        same.1 += 1;
                    } else {
                        diff.0 += s;
                        diff.1 += 1;
                    }
                }
            }
        }
        let mean_same = same.0 / same.1 as f64;
        let mean_diff = diff.0 / diff.1 as f64;
        assert!(
            mean_same > mean_diff + 0.05,
            "same-group PCC {mean_same} should exceed cross-group {mean_diff}"
        );
    }

    /// Tiny local PCC so cf-data needn't depend on cf-similarity.
    mod cf_similarity_stub {
        use cf_matrix::{RatingMatrix, UserId};

        pub fn user_pcc_naive(m: &RatingMatrix, a: usize, b: usize) -> Option<f64> {
            let (ia, va) = m.user_row(UserId::from(a));
            let (ib, vb) = m.user_row(UserId::from(b));
            let (ma, mb) = (m.user_mean(UserId::from(a)), m.user_mean(UserId::from(b)));
            let (mut x, mut y) = (0, 0);
            let (mut dot, mut na, mut nb, mut n) = (0.0, 0.0, 0.0, 0);
            while x < ia.len() && y < ib.len() {
                match ia[x].cmp(&ib[y]) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        let da = va[x] - ma;
                        let db = vb[y] - mb;
                        dot += da * db;
                        na += da * da;
                        nb += db * db;
                        n += 1;
                        x += 1;
                        y += 1;
                    }
                }
            }
            if n < 5 || na <= 0.0 || nb <= 0.0 {
                None
            } else {
                Some(dot / (na.sqrt() * nb.sqrt()))
            }
        }
    }

    #[test]
    #[should_panic(expected = "min ratings per user exceeds item count")]
    fn impossible_floor_panics() {
        let cfg = SyntheticConfig {
            num_items: 10,
            min_ratings_per_user: 20,
            ..SyntheticConfig::small()
        };
        let _ = cfg.generate();
    }

    #[test]
    fn custom_scale_flows_through() {
        let d = SyntheticConfig {
            scale: RatingScale::new(1.0, 10.0),
            base_rating: 5.5,
            affinity_strength: 2.0,
            user_bias_sd: 1.0,
            ..SyntheticConfig::small()
        }
        .generate();
        let s = d.stats();
        assert!(
            s.max_rating > 5.0,
            "scale ceiling unused: max {}",
            s.max_rating
        );
        assert!(s.min_rating >= 1.0);
        assert_eq!(d.matrix.scale(), RatingScale::new(1.0, 10.0));
    }

    #[test]
    fn small_config_is_fast_and_valid() {
        let d = SyntheticConfig::small().generate();
        assert_eq!(d.matrix.num_users(), 80);
        assert_eq!(d.matrix.num_items(), 120);
        assert!(d.matrix.density() > 0.1);
        for u in d.matrix.users() {
            assert!(d.matrix.user_count(u) >= 12);
        }
    }
}
