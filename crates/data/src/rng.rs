//! Small sampling helpers on top of `rand` (the offline dependency set has
//! no `rand_distr`, so the Gaussian comes from Box–Muller).

use rand::Rng;

/// Draws standard-normal variates via the Box–Muller transform, caching
/// the spare value so consecutive draws cost one transcendental pair per
/// two samples.
#[derive(Debug, Default, Clone)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// A fresh sampler with no cached spare.
    pub fn new() -> Self {
        Self::default()
    }

    /// One sample from `N(0, 1)`.
    pub fn standard<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 ∈ (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// One sample from `N(mean, sd²)`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn moments_are_roughly_standard_normal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut ns = NormalSampler::new();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| ns.standard(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sample_shifts_and_scales() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut ns = NormalSampler::new();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| ns.sample(&mut rng, 10.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let draw = |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut ns = NormalSampler::new();
            (0..10).map(|_| ns.standard(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
