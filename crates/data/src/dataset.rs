//! A named rating dataset plus optional generator ground truth.

use cf_matrix::{MatrixStats, RatingMatrix};

/// A rating dataset: the matrix plus provenance metadata.
///
/// When produced by the synthetic generator, the latent ground truth
/// (which taste group each user belongs to, which genre each item has) is
/// carried along — tests use it to verify that K-means actually recovers
/// planted structure, and it is never shown to any algorithm.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name used in reports ("synthetic-movielens", ...).
    pub name: String,
    /// The rating matrix.
    pub matrix: RatingMatrix,
    /// Generator ground truth: taste group per user (if synthetic).
    pub user_groups: Option<Vec<u32>>,
    /// Generator ground truth: genre per item (if synthetic).
    pub item_genres: Option<Vec<u32>>,
}

impl Dataset {
    /// Wraps a matrix loaded from external data (no ground truth).
    pub fn from_matrix(name: impl Into<String>, matrix: RatingMatrix) -> Self {
        Self {
            name: name.into(),
            matrix,
            user_groups: None,
            item_genres: None,
        }
    }

    /// Table-I style statistics for this dataset.
    pub fn stats(&self) -> MatrixStats {
        MatrixStats::compute(&self.matrix)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cf_matrix::{ItemId, MatrixBuilder, UserId};

    #[test]
    fn from_matrix_has_no_ground_truth() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), 3.0);
        let d = Dataset::from_matrix("tiny", b.build().unwrap());
        assert_eq!(d.name, "tiny");
        assert!(d.user_groups.is_none());
        assert_eq!(d.stats().num_ratings, 1);
    }
}
