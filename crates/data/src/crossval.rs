//! K-fold cross-validation over users.
//!
//! The paper's protocol fixes one test population (the last 200 users).
//! K-fold CV instead rotates every user through the test role once,
//! giving variance estimates from a single dataset — the standard rigor
//! upgrade for a reproduction.

use cf_matrix::{MatrixBuilder, UserId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Dataset, GivenN, HoldoutCell, Split};

/// Produces `k` folds; in fold `f`, the users of that fold are the test
/// population (revealing `given` ratings each) and everyone else trains
/// with full profiles.
///
/// Users are shuffled (seeded) before being dealt round-robin into
/// folds, so each fold is population-representative.
///
/// # Panics
/// Panics if `k < 2` or the dataset has fewer than `k` users.
pub fn k_fold_splits(dataset: &Dataset, k: usize, given: GivenN, seed: u64) -> Vec<Split> {
    assert!(k >= 2, "cross-validation needs at least 2 folds");
    let m = &dataset.matrix;
    assert!(
        m.num_users() >= k,
        "cannot deal {} users into {k} folds",
        m.num_users()
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut users: Vec<UserId> = m.users().collect();
    users.shuffle(&mut rng);
    let fold_of: Vec<usize> = {
        let mut f = vec![0usize; m.num_users()];
        for (pos, &u) in users.iter().enumerate() {
            f[u.index()] = pos % k;
        }
        f
    };

    (0..k)
        .map(|fold| {
            let mut b = MatrixBuilder::with_dims(m.num_users(), m.num_items()).scale(m.scale());
            let mut holdout = Vec::new();
            let n_given = given.count();
            for u in m.users() {
                if fold_of[u.index()] != fold {
                    for (i, r) in m.user_ratings(u) {
                        b.push(u, i, r);
                    }
                    continue;
                }
                // Test user: reveal `given` ratings (seeded per user so
                // the choice is stable across folds and runs).
                let profile: Vec<_> = m.user_ratings(u).collect();
                let mut order: Vec<usize> = (0..profile.len()).collect();
                let mut urng =
                    rand::rngs::StdRng::seed_from_u64(seed ^ (u.raw() as u64).wrapping_mul(0x9E37));
                order.shuffle(&mut urng);
                for (pos, &idx) in order.iter().enumerate() {
                    let (i, r) = profile[idx];
                    if pos < n_given {
                        b.push(u, i, r);
                    } else {
                        holdout.push(HoldoutCell {
                            user: u,
                            item: i,
                            rating: r,
                        });
                    }
                }
            }
            holdout.sort_unstable_by_key(|c| (c.user, c.item));
            Split {
                label: format!("fold{fold}/{}", given.label()),
                train: b
                    .build()
                    .unwrap_or_else(|e| unreachable!("folding a valid dataset stays valid: {e}")),
                holdout,
                train_users: m.num_users() - users.len() / k,
                test_start: 0, // folds interleave users; no contiguous range
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticConfig;
    use std::collections::BTreeSet;

    fn dataset() -> Dataset {
        SyntheticConfig::small().generate()
    }

    #[test]
    fn folds_partition_the_user_population() {
        let d = dataset();
        let folds = k_fold_splits(&d, 4, GivenN::Given5, 9);
        assert_eq!(folds.len(), 4);
        let mut tested: BTreeSet<UserId> = BTreeSet::new();
        for split in &folds {
            let fold_users: BTreeSet<UserId> = split.holdout.iter().map(|c| c.user).collect();
            for &u in &fold_users {
                assert!(tested.insert(u), "user {u:?} tested in two folds");
            }
        }
        // every user with more than `given` ratings appears exactly once
        let expected = d
            .matrix
            .users()
            .filter(|&u| d.matrix.user_count(u) > 5)
            .count();
        assert_eq!(tested.len(), expected);
    }

    #[test]
    fn fold_holdouts_are_disjoint_from_their_train_matrix() {
        let d = dataset();
        for split in k_fold_splits(&d, 3, GivenN::Given5, 1) {
            for cell in &split.holdout {
                assert_eq!(split.train.get(cell.user, cell.item), None);
                assert_eq!(d.matrix.get(cell.user, cell.item), Some(cell.rating));
            }
        }
    }

    #[test]
    fn non_test_users_keep_full_profiles() {
        let d = dataset();
        let folds = k_fold_splits(&d, 4, GivenN::Given5, 7);
        let fold0_testers: BTreeSet<UserId> = folds[0].holdout.iter().map(|c| c.user).collect();
        for u in d.matrix.users() {
            if !fold0_testers.contains(&u) && folds[0].train.user_count(u) == d.matrix.user_count(u)
            {
                continue;
            }
            // testers have exactly `given` revealed
            if fold0_testers.contains(&u) {
                assert_eq!(folds[0].train.user_count(u), 5);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = dataset();
        let a = k_fold_splits(&d, 3, GivenN::Given5, 11);
        let b = k_fold_splits(&d, 3, GivenN::Given5, 11);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.holdout, y.holdout);
        }
        let c = k_fold_splits(&d, 3, GivenN::Given5, 12);
        assert_ne!(a[0].holdout, c[0].holdout);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_panics() {
        let d = dataset();
        let _ = k_fold_splits(&d, 1, GivenN::Given5, 0);
    }
}
