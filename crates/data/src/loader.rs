//! Reader/writer for the GroupLens `u.data` tab-separated rating format.
//!
//! Each line is `user_id<TAB>item_id<TAB>rating<TAB>timestamp` with 1-based
//! ids. With a real MovieLens download this loader reproduces the paper's
//! exact input; the rest of the workspace does not care where the matrix
//! came from.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use cf_matrix::{ItemId, MatrixBuilder, MatrixError, QuarantineReport, RatingMatrix, UserId};

use crate::Dataset;

/// Accounting from the lenient loader: what was dropped, and why.
///
/// The strict loader fails on the first bad line or rating; production
/// ingestion prefers to survive a partially corrupt feed, so the lenient
/// variants skip bad input and report it here instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Lines that could not be parsed at all (wrong field count,
    /// unparsable numbers, 0-based ids).
    pub malformed_lines: usize,
    /// Parsed triplets dropped by matrix validation (NaN, out-of-scale,
    /// conflicting duplicates).
    pub quarantine: QuarantineReport,
}

impl LoadReport {
    /// Total number of dropped lines/triplets.
    pub fn total_dropped(&self) -> usize {
        self.malformed_lines + self.quarantine.total()
    }

    /// `true` when every input line made it into the matrix.
    pub fn is_clean(&self) -> bool {
        self.total_dropped() == 0
    }
}

/// Errors while parsing `u.data`-format input.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (wrong field count or unparsable numbers).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what failed.
        message: String,
    },
    /// The parsed triplets failed matrix validation.
    Matrix(MatrixError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Parse { line, message } => write!(f, "line {line}: {message}"),
            Self::Matrix(e) => write!(f, "invalid rating data: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<MatrixError> for LoadError {
    fn from(e: MatrixError) -> Self {
        Self::Matrix(e)
    }
}

/// Parses `u.data`-format text from any reader. 1-based ids become 0-based
/// dense indices (`id - 1`); blank lines are skipped; the trailing
/// timestamp field is optional and ignored.
pub fn load_movielens_reader<R: Read>(reader: R, name: &str) -> Result<Dataset, LoadError> {
    let mut b = MatrixBuilder::new();
    let reader = BufReader::new(reader);
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some((u, i, r)) = parse_line(&line, idx + 1)? {
            b.push(u, i, r);
        }
    }
    let matrix = b.build()?;
    Ok(Dataset::from_matrix(name, matrix))
}

/// Lenient variant of [`load_movielens_reader`]: malformed lines and
/// invalid ratings are skipped and counted in the returned [`LoadReport`]
/// instead of aborting the load. I/O errors still fail, as does input with
/// no salvageable rating at all.
pub fn load_movielens_reader_lenient<R: Read>(
    reader: R,
    name: &str,
) -> Result<(Dataset, LoadReport), LoadError> {
    let mut b = MatrixBuilder::new();
    let mut report = LoadReport::default();
    let reader = BufReader::new(reader);
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        match parse_line(&line, idx + 1) {
            Ok(Some((u, i, r))) => b.push(u, i, r),
            Ok(None) => {}
            Err(_) => report.malformed_lines += 1,
        }
    }
    let (matrix, quarantine) = b.build_quarantined()?;
    report.quarantine = quarantine;
    Ok((Dataset::from_matrix(name, matrix), report))
}

/// Parses one `u.data` line into a triplet; `Ok(None)` for blank lines.
fn parse_line(line: &str, line_no: usize) -> Result<Option<(UserId, ItemId, f64)>, LoadError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let mut fields = trimmed.split_whitespace();
    let user: u32 = next_field(&mut fields, line_no, "user id")?;
    let item: u32 = next_field(&mut fields, line_no, "item id")?;
    let rating: f64 = next_field(&mut fields, line_no, "rating")?;
    if user == 0 || item == 0 {
        return Err(LoadError::Parse {
            line: line_no,
            message: "MovieLens ids are 1-based; found 0".into(),
        });
    }
    Ok(Some((UserId::new(user - 1), ItemId::new(item - 1), rating)))
}

fn next_field<T: std::str::FromStr>(
    fields: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<T, LoadError> {
    let raw = fields.next().ok_or_else(|| LoadError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    raw.parse().map_err(|_| LoadError::Parse {
        line,
        message: format!("cannot parse {what} from {raw:?}"),
    })
}

/// Loads a `u.data` file from disk.
pub fn load_movielens(path: impl AsRef<Path>) -> Result<Dataset, LoadError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "movielens".into());
    load_movielens_reader(file, &name)
}

/// Loads a `u.data` file from disk leniently; see
/// [`load_movielens_reader_lenient`].
pub fn load_movielens_lenient(path: impl AsRef<Path>) -> Result<(Dataset, LoadReport), LoadError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "movielens".into());
    load_movielens_reader_lenient(file, &name)
}

/// Parses `u.data`-format text from a string (handy for tests/examples).
pub fn load_movielens_str(text: &str, name: &str) -> Result<Dataset, LoadError> {
    load_movielens_reader(text.as_bytes(), name)
}

/// Lenient string-input variant; see [`load_movielens_reader_lenient`].
pub fn load_movielens_str_lenient(
    text: &str,
    name: &str,
) -> Result<(Dataset, LoadReport), LoadError> {
    load_movielens_reader_lenient(text.as_bytes(), name)
}

/// Writes a matrix back out in `u.data` format (1-based ids, timestamp 0).
/// Round-trips through [`load_movielens_str`].
pub fn save_movielens<W: Write>(m: &RatingMatrix, mut out: W) -> std::io::Result<()> {
    let mut buf = std::io::BufWriter::new(&mut out);
    for (u, i, r) in m.triplets() {
        // Integer ratings print without a decimal point, matching the
        // original file format.
        if cf_matrix::approx_zero(r.fract()) {
            writeln!(buf, "{}\t{}\t{}\t0", u.raw() + 1, i.raw() + 1, r as i64)?;
        } else {
            writeln!(buf, "{}\t{}\t{}\t0", u.raw() + 1, i.raw() + 1, r)?;
        }
    }
    buf.flush()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = "1\t2\t5\t881250949\n2\t1\t3\t891717742\n2\t3\t4\t878887116\n";

    #[test]
    fn lenient_loader_skips_and_counts_bad_input() {
        let text = "1\t1\t4\t0\n\
                    garbage line\n\
                    0\t1\t3\t0\n\
                    2\t1\tNaN\t0\n\
                    2\t2\t9\t0\n\
                    2\t3\t2\t0\n";
        let (d, report) = load_movielens_str_lenient(text, "dirty").unwrap();
        assert_eq!(report.malformed_lines, 2); // garbage + 0-based id
        assert_eq!(report.quarantine.non_finite, 1);
        assert_eq!(report.quarantine.out_of_scale, 1);
        assert_eq!(report.total_dropped(), 4);
        assert!(!report.is_clean());
        assert_eq!(d.matrix.num_ratings(), 2);
        assert_eq!(d.matrix.get(UserId::new(1), ItemId::new(2)), Some(2.0));
    }

    #[test]
    fn lenient_loader_is_clean_on_valid_input_and_matches_strict() {
        let (d, report) = load_movielens_str_lenient(SAMPLE, "sample").unwrap();
        assert!(report.is_clean());
        let strict = load_movielens_str(SAMPLE, "sample").unwrap();
        let a: Vec<_> = d.matrix.triplets().collect();
        let b: Vec<_> = strict.matrix.triplets().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn lenient_loader_with_nothing_salvageable_errors() {
        let e = load_movielens_str_lenient("not\ta\tline\n", "x").unwrap_err();
        assert!(matches!(e, LoadError::Matrix(MatrixError::Empty)), "{e}");
    }

    #[test]
    fn parses_sample_lines() {
        let d = load_movielens_str(SAMPLE, "sample").unwrap();
        assert_eq!(d.matrix.num_users(), 2);
        assert_eq!(d.matrix.num_items(), 3);
        assert_eq!(d.matrix.get(UserId::new(0), ItemId::new(1)), Some(5.0));
        assert_eq!(d.matrix.get(UserId::new(1), ItemId::new(0)), Some(3.0));
    }

    #[test]
    fn skips_blank_lines_and_tolerates_missing_timestamp() {
        let d = load_movielens_str("1\t1\t4\n\n2\t2\t2\t0\n", "x").unwrap();
        assert_eq!(d.matrix.num_ratings(), 2);
    }

    #[test]
    fn rejects_zero_ids() {
        let e = load_movielens_str("0\t1\t3\t0\n", "x").unwrap_err();
        assert!(matches!(e, LoadError::Parse { line: 1, .. }), "{e}");
    }

    #[test]
    fn rejects_garbage_fields() {
        let e = load_movielens_str("1\tfoo\t3\t0\n", "x").unwrap_err();
        assert!(e.to_string().contains("item id"), "{e}");
        let e = load_movielens_str("1\t2\n", "x").unwrap_err();
        assert!(e.to_string().contains("missing rating"), "{e}");
    }

    #[test]
    fn rejects_out_of_scale_ratings_via_matrix_validation() {
        let e = load_movielens_str("1\t1\t9\t0\n", "x").unwrap_err();
        assert!(matches!(e, LoadError::Matrix(_)), "{e}");
    }

    #[test]
    fn round_trips_through_save() {
        let d = load_movielens_str(SAMPLE, "sample").unwrap();
        let mut out = Vec::new();
        save_movielens(&d.matrix, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let d2 = load_movielens_str(&text, "sample2").unwrap();
        let a: Vec<_> = d.matrix.triplets().collect();
        let b: Vec<_> = d2.matrix.triplets().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn file_loader_reads_from_disk() {
        let dir = std::env::temp_dir().join("cf_data_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("u.data");
        std::fs::write(&path, SAMPLE).unwrap();
        let d = load_movielens(&path).unwrap();
        assert_eq!(d.matrix.num_ratings(), 3);
        assert_eq!(d.name, "u.data");
        std::fs::remove_file(&path).ok();
    }
}
