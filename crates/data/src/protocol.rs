//! The paper's evaluation protocol (§V-A).
//!
//! From a 500-user dataset the paper takes the *first* 100/200/300 users
//! as training profiles (ML_100/200/300) and the *last* 200 users as test
//! users. Each test user reveals `Given N ∈ {5, 10, 20}` of their ratings
//! to the system; every other rating of theirs is held out and predicted,
//! and MAE is computed over those holdout cells.
//!
//! The resulting [`Split`] contains one training matrix (training users'
//! full rows + test users' revealed rows — this is what every algorithm
//! trains on) and the holdout list.

use cf_matrix::{ItemId, MatrixBuilder, RatingMatrix, UserId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::Dataset;

/// How many leading users form the training population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainSize {
    /// First `n` users (the paper's ML_100/ML_200/ML_300).
    Users(usize),
}

impl TrainSize {
    /// The user count.
    pub fn count(self) -> usize {
        match self {
            Self::Users(n) => n,
        }
    }

    /// The paper's label for this training set ("ML_300" etc.).
    pub fn label(self) -> String {
        format!("ML_{}", self.count())
    }
}

/// How many ratings each test user reveals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GivenN {
    /// Reveal 5 ratings.
    Given5,
    /// Reveal 10 ratings.
    Given10,
    /// Reveal 20 ratings.
    Given20,
    /// Reveal an arbitrary number (for sweeps beyond the paper's grid).
    Custom(usize),
}

impl GivenN {
    /// Number of revealed ratings.
    pub fn count(self) -> usize {
        match self {
            Self::Given5 => 5,
            Self::Given10 => 10,
            Self::Given20 => 20,
            Self::Custom(n) => n,
        }
    }

    /// The paper's label ("Given5" etc.).
    pub fn label(self) -> String {
        format!("Given{}", self.count())
    }

    /// The three configurations used throughout the paper's evaluation.
    pub fn paper_grid() -> [GivenN; 3] {
        [Self::Given5, Self::Given10, Self::Given20]
    }
}

/// A single held-out rating to predict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoldoutCell {
    /// The test user.
    pub user: UserId,
    /// The held-out item.
    pub item: ItemId,
    /// The true rating.
    pub rating: f64,
}

/// Errors from an inconsistent protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Training + test users exceed the dataset's user count.
    NotEnoughUsers {
        /// Users required by the protocol.
        required: usize,
        /// Users available in the dataset.
        available: usize,
    },
    /// The test population would be empty.
    NoTestUsers,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotEnoughUsers {
                required,
                available,
            } => write!(
                f,
                "protocol needs {required} users but the dataset has {available}"
            ),
            Self::NoTestUsers => write!(f, "protocol selects zero test users"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The paper's train/test split policy.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Size of the training population (first users of the dataset).
    pub train: TrainSize,
    /// Ratings revealed per test user.
    pub given: GivenN,
    /// Number of test users, taken from the *end* of the dataset
    /// (paper: 200).
    pub test_users: usize,
    /// Fraction of the test users actually evaluated (Fig. 5 sweeps
    /// 10%–100%); selection is seeded and order-preserving.
    pub test_fraction: f64,
    /// Seed controlling which ratings are revealed and which test users
    /// survive `test_fraction`.
    pub seed: u64,
}

impl Protocol {
    /// A protocol with full test population, matching Tables II/III.
    pub fn new(train: TrainSize, given: GivenN, test_users: usize) -> Self {
        Self {
            train,
            given,
            test_users,
            test_fraction: 1.0,
            seed: 2009, // year of the paper; any fixed value works
        }
    }

    /// The paper's configuration: 200 test users.
    pub fn paper(train: TrainSize, given: GivenN) -> Self {
        Self::new(train, given, 200)
    }

    /// Overrides the evaluated fraction of test users (Fig. 5).
    #[must_use]
    pub fn with_test_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        self.test_fraction = fraction;
        self
    }

    /// Overrides the protocol seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Applies the protocol to a dataset.
    pub fn split(&self, dataset: &Dataset) -> Result<Split, ProtocolError> {
        let m = &dataset.matrix;
        let total = m.num_users();
        let train_n = self.train.count();
        if self.test_users == 0 {
            return Err(ProtocolError::NoTestUsers);
        }
        if train_n + self.test_users > total {
            return Err(ProtocolError::NotEnoughUsers {
                required: train_n + self.test_users,
                available: total,
            });
        }

        let test_start = total - self.test_users;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);

        // Which test users are evaluated (Fig. 5's 10%..100% sweeps).
        let mut evaluated: Vec<usize> = (test_start..total).collect();
        evaluated.shuffle(&mut rng);
        let keep = ((self.test_users as f64 * self.test_fraction).round() as usize)
            .clamp(1, self.test_users);
        evaluated.truncate(keep);
        evaluated.sort_unstable();

        let mut b = MatrixBuilder::with_dims(total, m.num_items()).scale(m.scale());
        // Training users contribute full profiles.
        for u in 0..train_n {
            let u = UserId::from(u);
            for (i, r) in m.user_ratings(u) {
                b.push(u, i, r);
            }
        }

        // Every test user reveals `given` ratings (chosen reproducibly);
        // evaluated test users' remaining ratings go to the holdout.
        let given = self.given.count();
        let mut holdout = Vec::new();
        for uu in test_start..total {
            let u = UserId::from(uu);
            let profile: Vec<(ItemId, f64)> = m.user_ratings(u).collect();
            let mut order: Vec<usize> = (0..profile.len()).collect();
            order.shuffle(&mut rng);
            let is_evaluated = evaluated.binary_search(&uu).is_ok();
            for (pos, &idx) in order.iter().enumerate() {
                let (i, r) = profile[idx];
                if pos < given {
                    b.push(u, i, r);
                } else if is_evaluated {
                    holdout.push(HoldoutCell {
                        user: u,
                        item: i,
                        rating: r,
                    });
                }
            }
        }

        // Deterministic holdout order regardless of shuffling.
        holdout.sort_unstable_by_key(|c| (c.user, c.item));

        let train = b
            .build()
            .unwrap_or_else(|e| unreachable!("split of a valid dataset is valid: {e}"));
        Ok(Split {
            label: format!("{}/{}", self.train.label(), self.given.label()),
            train,
            holdout,
            train_users: train_n,
            test_start,
        })
    }
}

/// A materialized train/holdout split.
#[derive(Debug, Clone)]
pub struct Split {
    /// "ML_300/Given10"-style label for reports.
    pub label: String,
    /// The matrix algorithms train on: full training rows + revealed test
    /// rows. Dimensions match the source dataset.
    pub train: RatingMatrix,
    /// Cells to predict, sorted by (user, item).
    pub holdout: Vec<HoldoutCell>,
    /// Number of leading training users.
    pub train_users: usize,
    /// Index of the first test user.
    pub test_start: usize,
}

impl Split {
    /// Ids of the test users (all of them, evaluated or not).
    pub fn test_users(&self) -> impl ExactSizeIterator<Item = UserId> + '_ {
        (self.test_start..self.train.num_users()).map(UserId::from)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::SyntheticConfig;

    fn dataset() -> Dataset {
        SyntheticConfig::small().generate() // 80 users × 120 items
    }

    #[test]
    fn split_partitions_test_ratings() {
        let d = dataset();
        let p = Protocol::new(TrainSize::Users(40), GivenN::Given5, 20);
        let s = p.split(&d).unwrap();
        assert_eq!(s.train.num_users(), 80);
        assert_eq!(s.train_users, 40);
        assert_eq!(s.test_start, 60);
        // Every test user has exactly 5 ratings in the training matrix
        // (the generator guarantees ≥12 per user).
        for u in s.test_users() {
            assert_eq!(s.train.user_count(u), 5, "user {u:?}");
        }
        // holdout + revealed = original profile for each test user
        for u in s.test_users() {
            let original = d.matrix.user_count(u);
            let held: usize = s.holdout.iter().filter(|c| c.user == u).count();
            assert_eq!(held + 5, original, "user {u:?}");
        }
    }

    #[test]
    fn holdout_cells_carry_true_ratings_and_are_absent_from_train() {
        let d = dataset();
        let s = Protocol::new(TrainSize::Users(40), GivenN::Given10, 20)
            .split(&d)
            .unwrap();
        assert!(!s.holdout.is_empty());
        for c in &s.holdout {
            assert_eq!(d.matrix.get(c.user, c.item), Some(c.rating));
            assert_eq!(s.train.get(c.user, c.item), None);
        }
    }

    #[test]
    fn users_between_train_and_test_are_excluded() {
        let d = dataset();
        let s = Protocol::new(TrainSize::Users(30), GivenN::Given5, 20)
            .split(&d)
            .unwrap();
        // users 30..59 are in neither population
        for u in 30..60usize {
            assert_eq!(s.train.user_count(UserId::from(u)), 0, "user {u}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = dataset();
        let p = Protocol::new(TrainSize::Users(40), GivenN::Given5, 20);
        let a = p.split(&d).unwrap();
        let b = p.split(&d).unwrap();
        assert_eq!(a.holdout, b.holdout);
        let c = p.clone().with_seed(1).split(&d).unwrap();
        assert_ne!(a.holdout, c.holdout);
    }

    #[test]
    fn test_fraction_scales_holdout_population() {
        let d = dataset();
        let full = Protocol::new(TrainSize::Users(40), GivenN::Given5, 20)
            .split(&d)
            .unwrap();
        let half = Protocol::new(TrainSize::Users(40), GivenN::Given5, 20)
            .with_test_fraction(0.5)
            .split(&d)
            .unwrap();
        let users_full: std::collections::BTreeSet<_> =
            full.holdout.iter().map(|c| c.user).collect();
        let users_half: std::collections::BTreeSet<_> =
            half.holdout.iter().map(|c| c.user).collect();
        assert_eq!(users_full.len(), 20);
        assert_eq!(users_half.len(), 10);
        assert!(users_half.is_subset(&users_full));
        // revealed ratings are identical: fraction only affects evaluation
        for u in half.test_users() {
            assert_eq!(half.train.user_count(u), 5);
        }
    }

    #[test]
    fn errors_when_populations_overlap() {
        let d = dataset();
        let e = Protocol::new(TrainSize::Users(70), GivenN::Given5, 20)
            .split(&d)
            .unwrap_err();
        assert_eq!(
            e,
            ProtocolError::NotEnoughUsers {
                required: 90,
                available: 80
            }
        );
        let e = Protocol::new(TrainSize::Users(10), GivenN::Given5, 0)
            .split(&d)
            .unwrap_err();
        assert_eq!(e, ProtocolError::NoTestUsers);
    }

    #[test]
    fn labels_match_paper_nomenclature() {
        assert_eq!(TrainSize::Users(300).label(), "ML_300");
        assert_eq!(GivenN::Given10.label(), "Given10");
        assert_eq!(GivenN::Custom(7).label(), "Given7");
        let d = dataset();
        let s = Protocol::new(TrainSize::Users(40), GivenN::Given20, 20)
            .split(&d)
            .unwrap();
        assert_eq!(s.label, "ML_40/Given20");
    }

    #[test]
    fn given_larger_than_profile_reveals_everything() {
        let d = dataset();
        let s = Protocol::new(TrainSize::Users(40), GivenN::Custom(10_000), 20)
            .split(&d)
            .unwrap();
        assert!(s.holdout.is_empty());
        for u in s.test_users() {
            assert_eq!(s.train.user_count(u), d.matrix.user_count(u));
        }
    }
}
