//! # cf-data — datasets and the paper's evaluation protocol
//!
//! Three pieces:
//!
//! - [`SyntheticConfig`] / [`Dataset`] — a seeded generator producing a
//!   MovieLens-like rating matrix (latent taste groups × item genres,
//!   per-user/per-item bias, popularity skew). This is the documented
//!   substitution for the paper's MovieLens extract (500 users × 1000
//!   items, ≥40 ratings/user, ≈9.44% dense): the real dataset is not
//!   redistributable, but the algorithms only ever see the matrix, and the
//!   generator reproduces the statistical structure CFSF exploits.
//! - [`load_movielens`] / [`save_movielens`] — reader/writer for the
//!   GroupLens `u.data` tab-separated format, so the real dataset can be
//!   dropped in when available.
//! - [`Protocol`] — the paper's split: training = first `N` users
//!   (ML_100/200/300), test = the last 200 users with `Given5/10/20`
//!   observed ratings each; everything else is held out for MAE.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod crossval;
mod dataset;
mod loader;
mod protocol;
mod rng;
mod synthetic;

pub use crossval::k_fold_splits;
pub use dataset::Dataset;
pub use loader::{
    load_movielens, load_movielens_lenient, load_movielens_str, load_movielens_str_lenient,
    save_movielens, LoadError, LoadReport,
};
pub use protocol::{GivenN, HoldoutCell, Protocol, ProtocolError, Split, TrainSize};
pub use rng::NormalSampler;
pub use synthetic::SyntheticConfig;
