//! # cf-faultinject — deterministic fault injection for the chaos suite
//!
//! Production code in this workspace carries *injection points*: named
//! hooks, compiled in only under the `faultinject` cargo feature of the
//! host crate, where a test can make a stage misbehave on demand — an
//! I/O error, a NaN rating, an empty neighbor list, a panicking worker, a
//! fault in the middle of an incremental refresh. The chaos suite
//! (`crates/core/tests/chaos.rs`) arms points, drives the normal serving
//! API, and asserts the process never panics, every prediction stays
//! finite and on-scale, and the degradation counters account for every
//! injected fault.
//!
//! Everything is deterministic: a point fires according to an explicit
//! [`Policy`], and the only randomized policy ([`Policy::Probability`])
//! draws from a xoshiro256** stream seeded at arm time, so a failing run
//! replays exactly.
//!
//! The registry is process-global because the hooks live deep inside
//! serving code that cannot thread a handle through. Tests that arm
//! points must serialize on a lock of their own (see the chaos suite's
//! `FAULT_LOCK`) — points are named, but the namespace is shared.
//!
//! Besides the named points, the crate ships deterministic I/O wrappers
//! ([`FailingReader`], [`FailingWriter`], [`TruncatedReader`]) for
//! exercising persistence error paths without touching the registry, and
//! [`ChildGuard`], a kill-on-drop handle for chaos tests that spawn real
//! processes (shards, routers) and murder them mid-load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::{Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// When an armed injection point fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Fires on every evaluation.
    Always,
    /// Fires on the first evaluation only.
    Once,
    /// Fires on the `n`-th evaluation (1-based), once.
    Nth(u64),
    /// Fires on every evaluation from the `n`-th (1-based) onward.
    From(u64),
    /// Fires independently with probability `p`, from a stream seeded at
    /// arm time — deterministic per (seed, evaluation index).
    Probability(f64),
}

struct Point {
    policy: Policy,
    rng: StdRng,
    evaluations: u64,
    fired: u64,
}

impl Point {
    fn evaluate(&mut self) -> bool {
        self.evaluations += 1;
        let fire = match self.policy {
            Policy::Always => true,
            Policy::Once => self.evaluations == 1,
            Policy::Nth(n) => self.evaluations == n,
            Policy::From(n) => self.evaluations >= n,
            Policy::Probability(p) => self.rng.gen::<f64>() < p,
        };
        if fire {
            self.fired += 1;
        }
        fire
    }
}

fn registry() -> &'static Mutex<HashMap<String, Point>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Point>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A panic while holding the registry lock is impossible (the critical
/// sections only touch the map), but fault-injection code of all things
/// must not turn a poisoned lock into a cascade — recover the guard.
fn lock() -> std::sync::MutexGuard<'static, HashMap<String, Point>> {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms `point` with `policy`, seeding its random stream from the point
/// name (so `Probability` policies replay without an explicit seed).
pub fn arm(point: &str, policy: Policy) {
    let seed = point.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    });
    arm_seeded(point, policy, seed);
}

/// Arms `point` with `policy` and an explicit seed for its stream.
pub fn arm_seeded(point: &str, policy: Policy, seed: u64) {
    lock().insert(
        point.to_string(),
        Point {
            policy,
            rng: StdRng::seed_from_u64(seed),
            evaluations: 0,
            fired: 0,
        },
    );
}

/// Disarms one point. Unarmed points never fire.
pub fn disarm(point: &str) {
    lock().remove(point);
}

/// Disarms every point — call between chaos scenarios.
pub fn disarm_all() {
    lock().clear();
}

/// Evaluates `point`: `true` when armed and its policy fires. This is the
/// call production hooks make; for an unarmed point it is one hash lookup
/// under a mutex, and the hooks themselves only exist under the host
/// crate's `faultinject` feature.
pub fn fires(point: &str) -> bool {
    match lock().get_mut(point) {
        Some(p) => p.evaluate(),
        None => false,
    }
}

/// How many times `point` has fired since it was armed (0 if unarmed).
pub fn fired_count(point: &str) -> u64 {
    lock().get(point).map_or(0, |p| p.fired)
}

/// How many times `point` has been evaluated since it was armed.
pub fn evaluation_count(point: &str) -> u64 {
    lock().get(point).map_or(0, |p| p.evaluations)
}

// --- typed helpers for common fault shapes -----------------------------

/// Returns an injected `io::Error` when `point` fires.
pub fn maybe_io_error(point: &str) -> io::Result<()> {
    if fires(point) {
        Err(io::Error::other(format!("injected fault: {point}")))
    } else {
        Ok(())
    }
}

/// Panics with a recognizable message when `point` fires.
pub fn maybe_panic(point: &str) {
    if fires(point) {
        panic!("injected panic: {point}");
    }
}

/// How long [`maybe_stall`] sleeps when its point fires. Long enough for
/// a chaos test to observe the system serving *around* the stalled
/// thread, short enough not to drag the suite.
pub const STALL: std::time::Duration = std::time::Duration::from_millis(250);

/// Sleeps for [`STALL`] when `point` fires (models a wedged worker — a
/// refresh thread stuck on slow I/O or a starved core — without killing
/// it). The caller's thread blocks; everything else keeps running, which
/// is exactly what the zero-pause chaos scenarios assert.
pub fn maybe_stall(point: &str) {
    if fires(point) {
        std::thread::sleep(STALL);
    }
}

/// Replaces `value` with NaN when `point` fires (models a corrupt rating
/// or estimator slipping into a numeric pipeline).
pub fn corrupt_f64(point: &str, value: f64) -> f64 {
    if fires(point) {
        f64::NAN
    } else {
        value
    }
}

// --- deterministic I/O wrappers ----------------------------------------

/// A reader that yields `inner`'s bytes until `fail_at` bytes have been
/// read, then returns an I/O error on every subsequent call.
#[derive(Debug)]
pub struct FailingReader<R> {
    inner: R,
    remaining: usize,
}

impl<R: Read> FailingReader<R> {
    /// Fails after `fail_at` bytes.
    pub fn new(inner: R, fail_at: usize) -> Self {
        Self {
            inner,
            remaining: fail_at,
        }
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected read fault"));
        }
        let cap = buf.len().min(self.remaining);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n;
        Ok(n)
    }
}

/// A writer that accepts `fail_at` bytes, then returns an I/O error on
/// every subsequent write.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    remaining: usize,
}

impl<W: Write> FailingWriter<W> {
    /// Fails after `fail_at` bytes.
    pub fn new(inner: W, fail_at: usize) -> Self {
        Self {
            inner,
            remaining: fail_at,
        }
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected write fault"));
        }
        let cap = buf.len().min(self.remaining);
        let n = self.inner.write(&buf[..cap])?;
        self.remaining -= n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that reports clean end-of-stream after `cut` bytes — a
/// truncated file, as opposed to a failing device.
#[derive(Debug)]
pub struct TruncatedReader<R> {
    inner: R,
    remaining: usize,
}

impl<R: Read> TruncatedReader<R> {
    /// Ends the stream after `cut` bytes.
    pub fn new(inner: R, cut: usize) -> Self {
        Self {
            inner,
            remaining: cut,
        }
    }
}

impl<R: Read> Read for TruncatedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let cap = buf.len().min(self.remaining);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n;
        Ok(n)
    }
}

/// A child process that is killed (and reaped) when the guard drops —
/// the process-level analogue of the injection points: chaos tests spawn
/// real shard/router processes through this so a failing assertion can
/// never leak orphans into the test host.
///
/// [`ChildGuard::kill_now`] is the chaos primitive itself: it models a
/// shard crashing mid-load, at a moment the test chooses.
#[derive(Debug)]
pub struct ChildGuard {
    child: Option<std::process::Child>,
    name: String,
}

impl ChildGuard {
    /// Takes ownership of `child`; `name` labels kill messages.
    pub fn new(child: std::process::Child, name: impl Into<String>) -> Self {
        Self {
            child: Some(child),
            name: name.into(),
        }
    }

    /// OS process id, if the child has not been killed yet.
    pub fn id(&self) -> Option<u32> {
        self.child.as_ref().map(std::process::Child::id)
    }

    /// The child handle, for reading its stdout/stderr pipes.
    pub fn child_mut(&mut self) -> Option<&mut std::process::Child> {
        self.child.as_mut()
    }

    /// Kills the child *now* and reaps it. Idempotent; this is how a
    /// chaos test murders a shard mid-load.
    pub fn kill_now(&mut self) {
        if let Some(mut child) = self.child.take() {
            // An already-exited child makes kill() fail; either way the
            // wait() reaps the zombie.
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Whether the child has already exited on its own (without killing
    /// it). `false` also after `kill_now`.
    pub fn exited(&mut self) -> bool {
        match self.child.as_mut() {
            Some(c) => matches!(c.try_wait(), Ok(Some(_))),
            None => false,
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if self.child.is_some() {
            // Normal teardown path: tests usually drop guards without an
            // explicit kill. Not a log-worthy event — but keep the name
            // around for debugging double-kill confusion.
            let _ = &self.name;
            self.kill_now();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// The registry is global and tests run threaded: each test uses its
    /// own point names so they cannot interfere.
    #[test]
    fn unarmed_points_never_fire() {
        assert!(!fires("t.unarmed"));
        assert_eq!(fired_count("t.unarmed"), 0);
    }

    #[test]
    fn policies_fire_as_specified() {
        arm("t.always", Policy::Always);
        assert!(fires("t.always") && fires("t.always"));

        arm("t.once", Policy::Once);
        assert!(fires("t.once"));
        assert!(!fires("t.once"));
        assert_eq!(fired_count("t.once"), 1);

        arm("t.nth", Policy::Nth(3));
        assert!(!fires("t.nth") && !fires("t.nth"));
        assert!(fires("t.nth"));
        assert!(!fires("t.nth"));

        arm("t.from", Policy::From(2));
        assert!(!fires("t.from"));
        assert!(fires("t.from") && fires("t.from"));

        disarm("t.always");
        assert!(!fires("t.always"));
    }

    #[test]
    fn probability_stream_is_deterministic() {
        arm_seeded("t.prob_a", Policy::Probability(0.5), 7);
        let a: Vec<bool> = (0..64).map(|_| fires("t.prob_a")).collect();
        arm_seeded("t.prob_a", Policy::Probability(0.5), 7);
        let b: Vec<bool> = (0..64).map(|_| fires("t.prob_a")).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn typed_helpers_map_fires_to_faults() {
        arm("t.io", Policy::Once);
        assert!(maybe_io_error("t.io").is_err());
        assert!(maybe_io_error("t.io").is_ok());

        arm("t.nan", Policy::Once);
        assert!(corrupt_f64("t.nan", 3.0).is_nan());
        assert_eq!(corrupt_f64("t.nan", 3.0), 3.0);

        arm("t.panic", Policy::Once);
        let r = std::panic::catch_unwind(|| maybe_panic("t.panic"));
        assert!(r.is_err());
        maybe_panic("t.panic"); // disarmed by Once: must not panic
    }

    #[test]
    fn failing_reader_fails_at_boundary() {
        let data = vec![7u8; 100];
        let mut r = FailingReader::new(data.as_slice(), 60);
        let mut buf = Vec::new();
        let e = r.read_to_end(&mut buf).unwrap_err();
        assert_eq!(buf.len(), 60);
        assert!(e.to_string().contains("injected"));
    }

    #[test]
    fn failing_writer_fails_at_boundary() {
        let mut sink = Vec::new();
        let mut w = FailingWriter::new(&mut sink, 10);
        assert_eq!(w.write(&[1u8; 8]).unwrap(), 8);
        assert_eq!(w.write(&[2u8; 8]).unwrap(), 2);
        assert!(w.write(&[3u8; 8]).is_err());
        assert_eq!(sink.len(), 10);
    }

    #[test]
    fn truncated_reader_ends_cleanly() {
        let data = vec![1u8; 100];
        let mut r = TruncatedReader::new(data.as_slice(), 42);
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf.len(), 42);
    }

    #[test]
    fn child_guard_kills_and_reaps() {
        let child = std::process::Command::new("sleep")
            .arg("30")
            .spawn()
            .expect("sleep is available on the test host");
        let mut guard = ChildGuard::new(child, "sleep-test");
        assert!(guard.id().is_some());
        assert!(!guard.exited());
        guard.kill_now();
        assert!(guard.id().is_none());
        guard.kill_now(); // idempotent
    }
}
