//! Real-thread stress tests for the zero-pause refresh path: reader
//! threads hammer predictions through the generation cell while a
//! rebuild publishes underneath them.
//!
//! The two invariants the tentpole promises:
//!
//! 1. **Bit-identical straddling** — a request that loads generation
//!    `g` computes exactly what generation `g` computes, no matter how
//!    the swap interleaves with it (the `Arc` snapshot pins the model).
//! 2. **Zero failed requests** — a drift-triggered rebuild under
//!    sustained mixed load never surfaces an error or a block to any
//!    reader.
//!
//! The drift/quality windows are process-global, so the tests serialize
//! on a local mutex.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use cf_matrix::{ItemId, UserId};
use cfsf_core::{Cfsf, CfsfConfig, DriftConfig, DriftState, SelfHealingCfsf};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn fitted() -> Cfsf {
    let d = cf_data::SyntheticConfig::small().generate();
    Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
}

/// A drift config that never trips on its own, so the test controls
/// exactly when the rebuild happens (via `trigger`).
fn parked() -> DriftConfig {
    DriftConfig {
        mae_trip_pm: i64::MAX,
        mae_clear_pm: 0,
        hist_trip_pm: i64::MAX,
        hist_clear_pm: 0,
        fallback_trip_pm: i64::MAX,
        fallback_clear_pm: 0,
        trip_windows: u32::MAX,
        ..DriftConfig::default()
    }
}

/// Unrated cells of the served matrix, usable as fresh live ratings.
fn unrated_cells(model: &Cfsf, n: usize) -> Vec<(UserId, ItemId)> {
    let m = model.matrix();
    let mut out = Vec::with_capacity(n);
    'outer: for u in 0..m.num_users() {
        for i in 0..m.num_items() {
            let (user, item) = (UserId::from(u), ItemId::from(i));
            if m.get(user, item).is_none() {
                out.push((user, item));
                if out.len() == n {
                    break 'outer;
                }
            }
        }
    }
    out
}

fn counter(name: &str) -> u64 {
    cf_obs::global()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// One recorded read: which generation the reader loaded, which probe it
/// predicted, and the exact bits it got.
struct Sample {
    generation: u64,
    probe: usize,
    bits: u64,
}

#[test]
fn requests_straddling_a_swap_are_bit_identical_per_generation() {
    let _guard = serial();
    let healing = SelfHealingCfsf::new(fitted(), parked()).unwrap();
    let cell = healing.cell();
    let gen0 = cell.load();

    // Probes spread across the matrix; every reader predicts this set
    // over and over while the swap happens underneath.
    let m = gen0.matrix();
    let probes: Vec<(UserId, ItemId)> = (0..64)
        .map(|k| {
            (
                UserId::from((k * 7) % m.num_users()),
                ItemId::from((k * 13) % m.num_items()),
            )
        })
        .collect();
    let probes = Arc::new(probes);

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let probes = Arc::clone(&probes);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut samples = Vec::new();
                let mut failed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for (idx, &(user, item)) in probes.iter().enumerate() {
                        let (model, generation) = cell.load_with_generation();
                        match model.predict_with_breakdown(user, item) {
                            Some(b) => samples.push(Sample {
                                generation,
                                probe: idx,
                                bits: b.fused.to_bits(),
                            }),
                            None => failed += 1,
                        }
                    }
                }
                (samples, failed)
            })
        })
        .collect();

    // Merge a batch of fresh ratings and force the rebuild mid-load.
    let scale = gen0.matrix().scale();
    for (user, item) in unrated_cells(&gen0, 24) {
        healing.add_rating(user, item, scale.min).unwrap();
    }
    // Give the readers a moment on generation 0 before the swap.
    std::thread::sleep(Duration::from_millis(30));
    assert!(healing.trigger(), "manual trigger must start a rebuild");
    healing.wait_idle();
    assert_eq!(healing.generation(), 1, "the rebuild must have published");
    // And a moment on generation 1 after it.
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);

    let gen1 = cell.load();
    let mut seen = [0u64; 2];
    for reader in readers {
        let (samples, failed) = reader.join().unwrap();
        assert_eq!(failed, 0, "an in-range request failed during the swap");
        for s in samples {
            assert!(s.generation <= 1, "impossible generation {}", s.generation);
            seen[s.generation as usize] += 1;
            let expect = if s.generation == 0 { &gen0 } else { &gen1 };
            let (user, item) = probes[s.probe];
            let want = expect.predict_with_breakdown(user, item).unwrap();
            assert_eq!(
                s.bits,
                want.fused.to_bits(),
                "probe {:?} under generation {} diverged from that \
                 generation's model",
                (user, item),
                s.generation
            );
        }
    }
    assert!(
        seen[0] > 0 && seen[1] > 0,
        "load must straddle the swap (gen0 {} samples, gen1 {})",
        seen[0],
        seen[1]
    );
}

#[test]
fn drift_triggered_rebuild_under_load_fails_no_request() {
    let _guard = serial();
    let started_before = counter("refresh.started");
    let completed_before = counter("refresh.completed");

    // Hair-trigger thresholds: the drifted ingest below must trip the
    // monitor, not a manual trigger.
    let healing = SelfHealingCfsf::new(fitted(), DriftConfig::sensitive()).unwrap();
    let cell = healing.cell();
    let base = cell.load();
    let scale = base.matrix().scale();
    let (users, items) = (base.matrix().num_users(), base.matrix().num_items());

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|t| {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let (mut served, mut failed) = (0u64, 0u64);
                let mut k = t;
                while !stop.load(Ordering::Relaxed) {
                    let model = cell.load();
                    let user = UserId::from(k % users);
                    let item = ItemId::from((k * 11) % items);
                    match model.predict_with_breakdown(user, item) {
                        Some(_) => served += 1,
                        None => failed += 1,
                    }
                    k += 1;
                }
                (served, failed)
            })
        })
        .collect();

    // Drift burst: everyone suddenly rates at the top of the scale.
    // Sensitive thresholds trip on the first evaluated window.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut cells = unrated_cells(&base, 256).into_iter();
    while healing.generation() == 0 && Instant::now() < deadline {
        match cells.next() {
            Some((user, item)) => {
                // The cell may collide with a rating merged meanwhile —
                // rejection is fine, failure to serve is not.
                let _ = healing.add_rating(user, item, scale.max);
            }
            None => break,
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    healing.wait_idle();
    stop.store(true, Ordering::Relaxed);

    assert!(
        healing.generation() >= 1,
        "the drift burst never triggered a rebuild (state {:?})",
        healing.drift_state()
    );
    let mut total_served = 0u64;
    for reader in readers {
        let (served, failed) = reader.join().unwrap();
        assert_eq!(failed, 0, "a request failed during the drift rebuild");
        total_served += served;
    }
    assert!(total_served > 0, "readers must have served under load");
    assert!(
        counter("refresh.started") > started_before,
        "refresh.started must count the drift-triggered rebuild"
    );
    assert!(
        counter("refresh.completed") > completed_before,
        "refresh.completed must count the publish"
    );
    // The drift state machine lands in cooldown (or back to healthy
    // after it expires) — never stuck rebuilding.
    assert_ne!(healing.drift_state(), DriftState::Rebuilding);
    // The /stats.json surface carries the drift + generation state.
    let snapshot = cf_obs::global().snapshot();
    assert!(snapshot.gauges.contains_key("drift.state"));
    assert!(snapshot.gauges.contains_key("refresh.generation"));
}
