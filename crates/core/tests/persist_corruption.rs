//! Property-based corruption tests for the persistence layer: arbitrary
//! single-bit flips and truncations anywhere in a saved stream must
//! never panic, and any load that *succeeds* — strictly or through
//! recovery — must serve predictions identical to the original model
//! (the rebuilt sections are deterministic re-derivations, and CRC32
//! catches every single-bit flip in the sections that cannot be
//! rebuilt).

use std::sync::OnceLock;

use cf_matrix::{ItemId, Predictor, UserId};
use cfsf_core::{Cfsf, CfsfConfig};
use proptest::prelude::*;

fn model() -> &'static Cfsf {
    static MODEL: OnceLock<Cfsf> = OnceLock::new();
    MODEL.get_or_init(|| {
        let d = cf_data::SyntheticConfig::small().generate();
        Cfsf::fit(&d.matrix, CfsfConfig::small()).expect("fit")
    })
}

fn saved() -> &'static [u8] {
    static SAVED: OnceLock<Vec<u8>> = OnceLock::new();
    SAVED.get_or_init(|| {
        let mut buf = Vec::new();
        model().save(&mut buf).expect("save");
        buf
    })
}

fn probes() -> impl Iterator<Item = (UserId, ItemId)> {
    (0..12).map(|k| (UserId::new(k * 11 % 80), ItemId::new(k * 17 % 120)))
}

/// Byte range of the `n`-th (0-based) section payload in a V3 stream
/// (16-byte header: magic, version, generation).
fn section_payload(buf: &[u8], n: usize) -> std::ops::Range<usize> {
    let mut pos = 16usize;
    for _ in 0..n {
        let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().expect("frame")) as usize;
        pos += 12 + len + 4;
    }
    let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().expect("frame")) as usize;
    pos + 12..pos + 12 + len
}

/// A loaded model is either rejected or predicts exactly like the
/// original — there is no third outcome where corruption slips through.
fn assert_sound(loaded: Result<Cfsf, impl std::fmt::Debug>) {
    if let Ok(m) = loaded {
        for (u, i) in probes() {
            assert_eq!(m.predict(u, i), model().predict(u, i), "({u:?},{i:?})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_flips_never_panic_and_never_corrupt_predictions(
        pos in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let mut buf = saved().to_vec();
        let pos = pos % buf.len();
        buf[pos] ^= 1 << bit;
        assert_sound(Cfsf::load(buf.as_slice()));
        assert_sound(Cfsf::load_with_recovery(buf.as_slice()).map(|(m, _)| m));
    }

    #[test]
    fn truncations_never_panic_and_never_corrupt_predictions(
        cut in 0usize..1_000_000,
    ) {
        let full = saved();
        let cut = cut % (full.len() + 1);
        let buf = &full[..cut];
        // A truncated stream must never load strictly...
        if cut < full.len() {
            prop_assert!(Cfsf::load(buf).is_err());
        }
        // ...and recovery either rejects it or rebuilds an equivalent.
        assert_sound(Cfsf::load_with_recovery(buf).map(|(m, _)| m));
    }

    /// Any bit flip anywhere in the quantized-planes section must fail
    /// the strict load (CRC), and recovery must refold the planes from
    /// the smoothed sheet — deterministically, so predictions stay
    /// bit-identical — without touching the gis/cluster sections.
    #[test]
    fn planes_section_flips_always_recover_bit_identically(
        off in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let mut buf = saved().to_vec();
        let planes = section_payload(&buf, 4);
        let pos = planes.start + off % planes.len();
        buf[pos] ^= 1 << bit;
        prop_assert!(Cfsf::load(buf.as_slice()).is_err());
        let (m, report) = Cfsf::load_with_recovery(buf.as_slice()).expect("planes recover");
        prop_assert!(report.planes_rebuilt);
        prop_assert!(!report.gis_rebuilt && !report.clusters_rebuilt);
        for (u, i) in probes() {
            prop_assert_eq!(m.predict(u, i), model().predict(u, i));
        }
    }

    #[test]
    fn double_corruption_never_panics(
        a in 0usize..1_000_000,
        b in 0usize..1_000_000,
        cut in 0usize..1_000_000,
    ) {
        let mut buf = saved().to_vec();
        let (a, b) = (a % buf.len(), b % buf.len());
        buf[a] ^= 0xFF;
        buf[b] ^= 0x55;
        buf.truncate(cut % (buf.len() + 1));
        assert_sound(Cfsf::load(buf.as_slice()));
        assert_sound(Cfsf::load_with_recovery(buf.as_slice()).map(|(m, _)| m));
    }
}
