//! Concurrency behavior of the online phase's shared caches.

use std::sync::Arc;

use cf_matrix::UserId;
use cfsf_core::{Cfsf, CfsfConfig};

fn model() -> Cfsf {
    let d = cf_data::SyntheticConfig::small().generate();
    Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
}

#[test]
fn concurrent_top_k_users_share_one_cached_selection() {
    // N threads race on a cold cache for the same user. Whoever loses the
    // insert race must still end up with the winner's Arc — all returned
    // handles are pointer-equal, so the cache holds exactly one selection
    // per user no matter how the race resolves.
    let m = model();
    let user = UserId::new(17);
    let threads = 8;

    for round in 0..10 {
        m.clear_caches();
        let handles: Vec<Arc<Vec<(UserId, f64)>>> =
            cf_parallel::par_map(threads, threads, |_| m.top_k_users(user));
        assert_eq!(handles.len(), threads);
        let first = &handles[0];
        for (t, h) in handles.iter().enumerate() {
            assert!(
                Arc::ptr_eq(first, h),
                "round {round}: thread {t} got a different selection Arc"
            );
        }
        // And the shared selection is the correct one.
        assert_eq!(**first, *m.top_k_users(user));
    }
}

#[test]
fn concurrent_top_k_users_across_distinct_users_is_consistent() {
    // Different users hammered concurrently: each user's selection matches
    // what a quiet, sequential query produces.
    let m = model();
    let users = 24;
    let concurrent: Vec<Arc<Vec<(UserId, f64)>>> =
        cf_parallel::par_map(users, 8, |u| m.top_k_users(UserId::from(u)));

    let quiet = model();
    for (u, got) in concurrent.iter().enumerate() {
        let expect = quiet.top_k_users(UserId::from(u));
        assert_eq!(**got, *expect, "user {u}");
    }
}

#[test]
fn neighbor_cache_capacity_is_a_hard_bound_under_concurrency() {
    // Shrink the cache far below the user population, then hammer every
    // user from many threads: the entry count must never exceed the bound,
    // and every selection served must still be correct.
    let mut m = model();
    m.set_neighbor_cache_capacity(16);
    let users = m.matrix().num_users(); // 80 users >> 16-ish entries

    for _ in 0..5 {
        let served: Vec<Arc<Vec<(UserId, f64)>>> =
            cf_parallel::par_map(users, 8, |u| m.top_k_users(UserId::from(u)));
        assert!(
            m.neighbor_cache_len() <= m.neighbor_cache_capacity(),
            "{} entries > bound {}",
            m.neighbor_cache_len(),
            m.neighbor_cache_capacity()
        );
        // Evictions must never corrupt what gets served.
        let quiet = model();
        for (u, got) in served.iter().enumerate() {
            assert_eq!(**got, *quiet.top_k_users(UserId::from(u)), "user {u}");
        }
    }
}

#[test]
fn repeat_hits_within_capacity_share_the_arc() {
    // With the whole population inside the bound, a second wave of lookups
    // must be pure cache hits: pointer-equal Arcs, no recomputation.
    let m = model();
    let users = 24;
    let first: Vec<Arc<Vec<(UserId, f64)>>> =
        cf_parallel::par_map(users, 8, |u| m.top_k_users(UserId::from(u)));
    let second: Vec<Arc<Vec<(UserId, f64)>>> =
        cf_parallel::par_map(users, 8, |u| m.top_k_users(UserId::from(u)));
    for u in 0..users {
        assert!(
            Arc::ptr_eq(&first[u], &second[u]),
            "user {u} was recomputed despite fitting in capacity"
        );
    }
    assert_eq!(m.neighbor_cache_len(), users);
}

#[test]
fn mixed_predict_traffic_under_tiny_cache_matches_serial() {
    // End-to-end: concurrent predict_batch with constant eviction churn
    // must still equal the serial answers.
    let mut m = model();
    m.set_neighbor_cache_capacity(16);
    let reqs: Vec<(UserId, cf_matrix::ItemId)> = (0..400)
        .map(|k| (UserId::new(k % 80), cf_matrix::ItemId::new((k * 11) % 120)))
        .collect();
    let serial: Vec<Option<f64>> = {
        use cf_matrix::Predictor;
        reqs.iter().map(|&(u, i)| m.predict(u, i)).collect()
    };
    for threads in [2, 8] {
        m.clear_caches();
        assert_eq!(m.predict_batch(&reqs, Some(threads)), serial, "t={threads}");
    }
}
