//! Concurrency behavior of the online phase's shared caches.

use std::sync::Arc;

use cf_matrix::UserId;
use cfsf_core::{Cfsf, CfsfConfig};

fn model() -> Cfsf {
    let d = cf_data::SyntheticConfig::small().generate();
    Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
}

#[test]
fn concurrent_top_k_users_share_one_cached_selection() {
    // N threads race on a cold cache for the same user. Whoever loses the
    // insert race must still end up with the winner's Arc — all returned
    // handles are pointer-equal, so the cache holds exactly one selection
    // per user no matter how the race resolves.
    let m = model();
    let user = UserId::new(17);
    let threads = 8;

    for round in 0..10 {
        m.clear_caches();
        let handles: Vec<Arc<Vec<(UserId, f64)>>> =
            cf_parallel::par_map(threads, threads, |_| m.top_k_users(user));
        assert_eq!(handles.len(), threads);
        let first = &handles[0];
        for (t, h) in handles.iter().enumerate() {
            assert!(
                Arc::ptr_eq(first, h),
                "round {round}: thread {t} got a different selection Arc"
            );
        }
        // And the shared selection is the correct one.
        assert_eq!(**first, *m.top_k_users(user));
    }
}

#[test]
fn concurrent_top_k_users_across_distinct_users_is_consistent() {
    // Different users hammered concurrently: each user's selection matches
    // what a quiet, sequential query produces.
    let m = model();
    let users = 24;
    let concurrent: Vec<Arc<Vec<(UserId, f64)>>> =
        cf_parallel::par_map(users, 8, |u| m.top_k_users(UserId::from(u)));

    let quiet = model();
    for (u, got) in concurrent.iter().enumerate() {
        let expect = quiet.top_k_users(UserId::from(u));
        assert_eq!(**got, *expect, "user {u}");
    }
}
