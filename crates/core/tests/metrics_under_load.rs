//! Metric-consistency invariants under concurrent serving load.
//!
//! Counter math only holds if every hot-path increment is placed exactly
//! once; this suite races two full batches through the model and checks
//! the exact bookkeeping identities. It lives in its own integration
//! test file (its own process) so the global registry deltas are not
//! perturbed by unrelated tests.

use cf_matrix::{ItemId, UserId};
use cfsf_core::{Cfsf, CfsfConfig};

const USERS: usize = 80;
const ITEMS: usize = 120;

fn model() -> Cfsf {
    let d = cf_data::SyntheticConfig::small().generate();
    Cfsf::fit(&d.matrix, CfsfConfig::small()).expect("fit succeeds")
}

fn counter(name: &str) -> u64 {
    cf_obs::global()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

const RUNGS: [&str; 6] = [
    "online.degrade.full",
    "online.degrade.partial_fusion",
    "online.degrade.single_estimator",
    "online.degrade.cluster_smoothed",
    "online.degrade.user_mean",
    "online.degrade.global_mean",
];

fn rung_sum() -> u64 {
    RUNGS.iter().map(|r| counter(r)).sum()
}

#[test]
fn degrade_and_cache_counters_balance_under_concurrent_load() {
    let m = std::sync::Arc::new(model());
    let requests: Vec<(UserId, ItemId)> = (0..600)
        .map(|k| {
            (
                UserId::new((k % USERS) as u32),
                ItemId::new(((k * 7) % ITEMS) as u32),
            )
        })
        .collect();
    let n = requests.len() as u64;

    let predictions_before = counter("online.predictions");
    let rungs_before = rung_sum();
    let hits_before = counter("online.neighbor_cache.hit");
    let misses_before = counter("online.neighbor_cache.miss");

    // Two OS threads race full batches (each itself 4-way parallel) over
    // a cold cache: worst-case contention on the sharded neighbor cache.
    m.clear_caches();
    let h1 = {
        let m = std::sync::Arc::clone(&m);
        let reqs = requests.clone();
        std::thread::spawn(move || m.predict_batch(&reqs, Some(4)))
    };
    let h2 = {
        let m = std::sync::Arc::clone(&m);
        let reqs = requests.clone();
        std::thread::spawn(move || m.predict_batch(&reqs, Some(4)))
    };
    let out1 = h1.join().expect("batch thread 1");
    let out2 = h2.join().expect("batch thread 2");
    assert_eq!(out1, out2, "racing batches must serve identical answers");
    assert!(
        out1.iter().all(Option::is_some),
        "all requests are in-range"
    );

    // --- Exact identity: every in-range prediction is served from
    // exactly one degradation rung.
    let predictions = counter("online.predictions") - predictions_before;
    assert_eq!(predictions, 2 * n, "one online.predictions per request");
    assert_eq!(
        rung_sum() - rungs_before,
        predictions,
        "every prediction lands on exactly one online.degrade.* rung"
    );

    // --- Exact identity: every top-K lookup is either a hit or a miss.
    // Each batch warms the USERS distinct users once, then each request
    // looks the user up again inside predict.
    let hits = counter("online.neighbor_cache.hit") - hits_before;
    let misses = counter("online.neighbor_cache.miss") - misses_before;
    let lookups = 2 * (USERS as u64) + 2 * n;
    assert_eq!(
        hits + misses,
        lookups,
        "every lookup must count as exactly one hit or miss"
    );
    // Cold cache: each of the USERS distinct users misses at least once;
    // two racing warms can at most double-miss each user.
    assert!(
        (USERS as u64..=2 * USERS as u64).contains(&misses),
        "misses {misses} outside [{USERS}, {}]",
        2 * USERS
    );
    assert!(hits >= 2 * n - misses, "the warmed lookups must mostly hit");
}

#[test]
fn estimator_counters_never_exceed_predictions() {
    let m = model();
    let before = counter("online.predictions");
    for u in 0..USERS {
        let _ = m.predict_with_breakdown(UserId::new(u as u32), ItemId::new((u % ITEMS) as u32));
    }
    let served = counter("online.predictions") - before;
    assert_eq!(served, USERS as u64);
    for est in [
        "online.estimator.sir",
        "online.estimator.sur",
        "online.estimator.suir",
    ] {
        assert!(
            counter(est) <= counter("online.predictions"),
            "{est} can fire at most once per prediction"
        );
    }
}
