//! Property-based tests for CFSF's fusion math and online invariants.

use cf_matrix::{ItemId, MatrixBuilder, Predictor, RatingMatrix, UserId};
use cfsf_core::{fuse, Cfsf, CfsfConfig, FusionWeights};
use proptest::prelude::*;

fn arb_component() -> impl Strategy<Value = Option<f64>> {
    proptest::option::of(1.0f64..=5.0)
}

fn arb_matrix() -> impl Strategy<Value = RatingMatrix> {
    proptest::collection::btree_map(
        (0u32..20, 0u32..25),
        (1u32..=5).prop_map(|r| r as f64),
        10..150,
    )
    .prop_map(|m| {
        let mut b = MatrixBuilder::with_dims(20, 25);
        for ((u, i), r) in m {
            b.push(UserId::new(u), ItemId::new(i), r);
        }
        b.build().expect("valid")
    })
}

proptest! {
    #[test]
    fn fusion_weights_always_sum_to_one(lambda in 0.0f64..=1.0, delta in 0.0f64..=1.0) {
        let w = FusionWeights::new(lambda, delta);
        prop_assert!((w.sir + w.sur + w.suir - 1.0).abs() < 1e-12);
        prop_assert!(w.sir >= 0.0 && w.sur >= 0.0 && w.suir >= 0.0);
    }

    #[test]
    fn fusion_is_convex_over_present_components(
        sir in arb_component(),
        sur in arb_component(),
        suir in arb_component(),
        lambda in 0.0f64..=1.0,
        delta in 0.0f64..=1.0,
    ) {
        match fuse(sir, sur, suir, lambda, delta) {
            Some(v) => {
                let present: Vec<f64> = [sir, sur, suir].iter().flatten().copied().collect();
                let lo = present.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = present.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} not in [{lo}, {hi}]");
            }
            None => {
                // None only when no component carries weight
                let w = FusionWeights::new(lambda, delta);
                let carried = [(sir, w.sir), (sur, w.sur), (suir, w.suir)]
                    .iter()
                    .any(|(v, wt)| v.is_some() && *wt > f64::EPSILON);
                prop_assert!(!carried);
            }
        }
    }

    #[test]
    fn fusion_is_monotone_in_each_component(
        base in 1.0f64..=4.0,
        bump in 0.01f64..=1.0,
        lambda in 0.05f64..=0.95,
        delta in 0.05f64..=0.95,
    ) {
        let low = fuse(Some(base), Some(base), Some(base), lambda, delta).unwrap();
        let hi_sir = fuse(Some(base + bump), Some(base), Some(base), lambda, delta).unwrap();
        let hi_sur = fuse(Some(base), Some(base + bump), Some(base), lambda, delta).unwrap();
        let hi_suir = fuse(Some(base), Some(base), Some(base + bump), lambda, delta).unwrap();
        prop_assert!(hi_sir >= low && hi_sur >= low && hi_suir >= low);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn model_predictions_stay_on_scale_and_are_deterministic(
        m in arb_matrix(),
        lambda in 0.0f64..=1.0,
        delta in 0.0f64..=1.0,
    ) {
        let config = CfsfConfig {
            clusters: 3,
            k: 6,
            m: 10,
            lambda,
            delta,
            ..CfsfConfig::paper()
        };
        let model = Cfsf::fit(&m, config).unwrap();
        for u in 0..m.num_users().min(10) {
            for i in 0..m.num_items().min(10) {
                let (u, i) = (UserId::from(u), ItemId::from(i));
                let a = model.predict(u, i);
                let b = model.predict(u, i);
                prop_assert_eq!(a, b);
                if let Some(r) = a {
                    prop_assert!((1.0..=5.0).contains(&r));
                }
            }
        }
    }

    #[test]
    fn breakdown_matches_predict(m in arb_matrix()) {
        let model = Cfsf::fit(
            &m,
            CfsfConfig { clusters: 3, k: 6, m: 10, ..CfsfConfig::paper() },
        )
        .unwrap();
        for u in 0..m.num_users().min(8) {
            for i in 0..m.num_items().min(8) {
                let (u, i) = (UserId::from(u), ItemId::from(i));
                let p = model.predict(u, i);
                let b = model.predict_with_breakdown(u, i).map(|b| b.fused);
                prop_assert_eq!(p, b);
            }
        }
    }
}
