//! Property tests pinning the serving fast path to the reference kernels.
//!
//! `Cfsf::predict_with_breakdown` (quantized planes + gathered SUIR
//! kernel) must match `Cfsf::predict_with_breakdown_ref` (per-cell `f64`
//! loops over the dense matrix) on every component, for random matrices,
//! the ε extremes and paper default, both plane precisions, and across
//! thread counts.
//!
//! The tolerance is model-derived: `plane_quant_step() + 1e-9`. Every
//! estimator is a convex (weighted-average) combination of ratings each
//! quantized to within half a step, weights are exact (DESIGN.md §6c
//! weight LUT), and fusion/clamping don't amplify error — so one step
//! bounds the value gap while availability, `m_used`/`k_used`, fallback,
//! and degrade level must agree exactly.

use cf_matrix::{ItemId, MatrixBuilder, Predictor, RatingMatrix, UserId};
use cfsf_core::{Cfsf, CfsfConfig, PlanePrecision};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = RatingMatrix> {
    proptest::collection::btree_map(
        (0u32..20, 0u32..24),
        (1u32..=5).prop_map(|r| r as f64),
        30..220,
    )
    .prop_map(|m| {
        let mut b = MatrixBuilder::with_dims(20, 24);
        for ((u, i), r) in m {
            b.push(UserId::new(u), ItemId::new(i), r);
        }
        b.build().expect("valid")
    })
}

fn opt_close(a: Option<f64>, b: Option<f64>, tol: f64) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => (x - y).abs() <= tol,
        (None, None) => true,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fast_path_matches_reference_across_epsilon(m in arb_matrix()) {
        for precision in [PlanePrecision::U16, PlanePrecision::U8] {
            for eps in [0.0, 0.35, 1.0] {
                let mut cfg = CfsfConfig::small().with_plane_precision(precision);
                cfg.w = eps;
                let model = Cfsf::fit(&m, cfg).expect("fit");
                let tol = model.plane_quant_step() + 1e-9;
                for u in 0..m.num_users() {
                    for i in 0..m.num_items() {
                        let (user, item) = (UserId::from(u), ItemId::from(i));
                        let fast = model.predict_with_breakdown(user, item);
                        let refr = model.predict_with_breakdown_ref(user, item);
                        match (fast, refr) {
                            (Some(f), Some(r)) => {
                                prop_assert!(
                                    (f.fused - r.fused).abs() <= tol,
                                    "{precision:?} eps={eps} ({u},{i}): fast={} ref={}",
                                    f.fused, r.fused
                                );
                                prop_assert!(
                                    opt_close(f.sir, r.sir, tol),
                                    "sir {precision:?} eps={eps} ({u},{i})"
                                );
                                prop_assert!(
                                    opt_close(f.sur, r.sur, tol),
                                    "sur {precision:?} eps={eps} ({u},{i})"
                                );
                                prop_assert!(
                                    opt_close(f.suir, r.suir, tol),
                                    "suir {precision:?} eps={eps} ({u},{i})"
                                );
                                prop_assert!(
                                    f.m_used == r.m_used,
                                    "m_used {precision:?} eps={eps} ({u},{i})"
                                );
                                prop_assert!(
                                    f.k_used == r.k_used,
                                    "k_used {precision:?} eps={eps} ({u},{i})"
                                );
                                prop_assert!(
                                    f.used_fallback == r.used_fallback,
                                    "fallback {precision:?} eps={eps} ({u},{i})"
                                );
                            }
                            (None, None) => {}
                            (f, r) => {
                                prop_assert!(
                                    false,
                                    "availability {precision:?} eps={eps} ({u},{i}): {f:?} vs {r:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_fast_path_matches_reference_across_threads(m in arb_matrix()) {
        let model = Cfsf::fit(&m, CfsfConfig::small()).expect("fit");
        let tol = model.plane_quant_step() + 1e-9;
        let reqs: Vec<(UserId, ItemId)> = (0..150)
            .map(|k| (UserId::new(k % 20), ItemId::new((k * 7) % 24)))
            .collect();
        // A deterministic shuffle of the same requests: the strip sort
        // inside predict_batch must make request order irrelevant.
        let shuffled: Vec<(UserId, ItemId)> = (0..reqs.len())
            .map(|k| reqs[(k * 101 + 37) % reqs.len()])
            .collect();
        let reference: Vec<Option<f64>> = reqs
            .iter()
            .map(|&(u, i)| model.predict_with_breakdown_ref(u, i).map(|b| b.fused))
            .collect();
        // The batch path must also stay bit-identical to the serial fast
        // path regardless of thread count (the batch_matches_serial
        // contract), while both sit within tolerance of the reference.
        let serial: Vec<Option<f64>> = reqs.iter().map(|&(u, i)| model.predict(u, i)).collect();
        let serial_shuffled: Vec<Option<f64>> =
            shuffled.iter().map(|&(u, i)| model.predict(u, i)).collect();
        for threads in [1usize, 2, 8] {
            model.clear_caches();
            let batch = model.predict_batch(&reqs, Some(threads));
            prop_assert!(batch == serial, "bit-exactness broke at threads={threads}");
            for (k, (b, r)) in batch.iter().zip(&reference).enumerate() {
                prop_assert!(
                    opt_close(*b, *r, tol),
                    "threads={} req={} batch={:?} ref={:?}", threads, k, b, r
                );
            }
            model.clear_caches();
            let batch_shuffled = model.predict_batch(&shuffled, Some(threads));
            prop_assert!(
                batch_shuffled == serial_shuffled,
                "request-order invariance broke at threads={threads}"
            );
        }
    }
}
