//! Deterministic fault-injection ("chaos") suite for the serving path.
//!
//! Run with `cargo test -p cfsf-core --features faultinject --test chaos`.
//! Every scenario arms one or more seeded `cf-faultinject` points,
//! exercises the public API, and asserts the three resilience
//! invariants:
//!
//! 1. no injected fault escapes as a panic from a public entry point,
//! 2. every prediction that is served is finite and inside the rating
//!    scale, and
//! 3. the observability counters move consistently with what was
//!    injected (faults are visible, not silent).
//!
//! Scenarios share one global registry and one silenced panic hook, so
//! they serialize on a mutex and disarm everything on scope exit — a
//! failing scenario cannot poison its neighbors.

#![cfg(feature = "faultinject")]

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use cf_faultinject as fi;
use cf_matrix::{ItemId, Predictor, UserId};
use cfsf_core::{
    Cfsf, CfsfConfig, DegradeLevel, DriftConfig, DriftState, IncrementalCfsf, SelfHealingCfsf,
};

// --- scenario scaffolding ----------------------------------------------

static FAULTS: Mutex<()> = Mutex::new(());

/// Serializes a scenario against the global injection registry, silences
/// the panic hook (several scenarios *expect* caught panics), and
/// guarantees `disarm_all` on exit even when the scenario fails.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

struct Scope {
    _lock: MutexGuard<'static, ()>,
    prev_hook: Option<PanicHook>,
}

fn scope() -> Scope {
    let lock = FAULTS.lock().unwrap_or_else(PoisonError::into_inner);
    fi::disarm_all();
    let prev = std::panic::take_hook();
    if std::env::var("CHAOS_LOUD").is_err() {
        std::panic::set_hook(Box::new(|_| {}));
    }
    Scope {
        _lock: lock,
        prev_hook: Some(prev),
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        fi::disarm_all();
        // Restoring the hook from a panicking thread aborts the process;
        // a failed scenario keeps the quiet hook, which is harmless.
        if !std::thread::panicking() {
            if let Some(hook) = self.prev_hook.take() {
                std::panic::set_hook(hook);
            }
        }
    }
}

fn model() -> &'static Cfsf {
    static MODEL: OnceLock<Cfsf> = OnceLock::new();
    MODEL.get_or_init(|| {
        let d = cf_data::SyntheticConfig::small().generate();
        Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
    })
}

fn fresh_model() -> Cfsf {
    let d = cf_data::SyntheticConfig::small().generate();
    Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
}

fn saved() -> Vec<u8> {
    let mut buf = Vec::new();
    model().save(&mut buf).unwrap();
    buf
}

fn counter(name: &str) -> u64 {
    cf_obs::global()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Byte range of the `n`-th (0-based) section payload in a V3 stream
/// (16-byte header: magic, version, generation).
fn section_payload(buf: &[u8], n: usize) -> std::ops::Range<usize> {
    let mut pos = 16; // magic + version + generation
    for _ in 0..n {
        let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap()) as usize;
        pos += 12 + len + 4;
    }
    let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap()) as usize;
    pos + 12..pos + 12 + len
}

fn assert_in_scale(m: &Cfsf, p: f64) {
    let scale = m.matrix().scale();
    assert!(p.is_finite(), "prediction {p} not finite");
    assert!(
        (scale.min..=scale.max).contains(&p),
        "prediction {p} outside [{}, {}]",
        scale.min,
        scale.max
    );
}

fn requests() -> Vec<(UserId, ItemId)> {
    (0..300)
        .map(|k| (UserId::new(k % 80), ItemId::new((k * 7) % 120)))
        .collect()
}

// --- scenario 1–3: persistence I/O faults -------------------------------

#[test]
fn save_io_errors_surface_as_errors() {
    let _s = scope();
    for fail_at in [0usize, 5, 64, 4096] {
        let mut w = fi::FailingWriter::new(Vec::new(), fail_at);
        let e = model().save(&mut w);
        assert!(e.is_err(), "write failing at byte {fail_at} must error");
    }
}

#[test]
fn load_io_errors_surface_as_errors() {
    let _s = scope();
    let buf = saved();
    for fail_at in [0usize, 6, 16, 200, buf.len() - 10] {
        let r = Cfsf::load(fi::FailingReader::new(buf.as_slice(), fail_at));
        assert!(r.is_err(), "read failing at byte {fail_at} must error");
        // The recovery path may rebuild what the matrix allows but must
        // never panic; a failure before the matrix section is an error.
        let rec = Cfsf::load_with_recovery(fi::FailingReader::new(buf.as_slice(), fail_at));
        if fail_at < 200 {
            assert!(rec.is_err(), "fail at {fail_at} precedes the matrix");
        }
    }
}

#[test]
fn truncation_at_any_depth_is_an_error_not_a_panic() {
    let _s = scope();
    let buf = saved();
    for cut in [
        0usize,
        3,
        8,
        12,
        20,
        100,
        buf.len() / 3,
        buf.len() / 2,
        buf.len() - 1,
    ] {
        let r = Cfsf::load(fi::TruncatedReader::new(buf.as_slice(), cut));
        assert!(r.is_err(), "cut at {cut} must error under strict load");
        // Recovery on a tail truncation may legitimately succeed by
        // rebuilding; whatever it returns must serve sound predictions.
        if let Ok((m, report)) =
            Cfsf::load_with_recovery(fi::TruncatedReader::new(buf.as_slice(), cut))
        {
            assert!(
                report.any(),
                "a truncated load can only succeed by rebuilding"
            );
            let p = m.predict(UserId::new(3), ItemId::new(7)).unwrap();
            assert_in_scale(&m, p);
        }
    }
}

// --- scenario 4–6: bit rot in each section ------------------------------

#[test]
fn matrix_corruption_is_unrecoverable() {
    let _s = scope();
    let mut buf = saved();
    let matrix = section_payload(&buf, 1);
    buf[matrix.start + matrix.len() / 2] ^= 0x40;
    assert!(Cfsf::load(buf.as_slice()).is_err());
    assert!(
        Cfsf::load_with_recovery(buf.as_slice()).is_err(),
        "the matrix is ground truth; recovery must refuse to invent it"
    );
}

#[test]
fn gis_corruption_recovers_with_identical_predictions() {
    let _s = scope();
    let mut buf = saved();
    let gis = section_payload(&buf, 2);
    let before = counter("persist.recovered.gis");
    buf[gis.start + 17] ^= 0xFF;
    assert!(Cfsf::load(buf.as_slice()).is_err());
    let (m, report) = Cfsf::load_with_recovery(buf.as_slice()).unwrap();
    assert!(report.gis_rebuilt && !report.clusters_rebuilt);
    assert_eq!(counter("persist.recovered.gis"), before + 1);
    for (u, i) in requests().into_iter().step_by(29) {
        assert_eq!(m.predict(u, i), model().predict(u, i), "({u:?},{i:?})");
    }
}

#[test]
fn cluster_corruption_recovers_with_identical_predictions() {
    let _s = scope();
    let mut buf = saved();
    let clusters = section_payload(&buf, 3);
    let before = counter("persist.recovered.clusters");
    buf[clusters.end - 2] ^= 0xFF;
    assert!(Cfsf::load(buf.as_slice()).is_err());
    let (m, report) = Cfsf::load_with_recovery(buf.as_slice()).unwrap();
    assert!(report.clusters_rebuilt && !report.gis_rebuilt);
    assert_eq!(counter("persist.recovered.clusters"), before + 1);
    for (u, i) in requests().into_iter().step_by(29) {
        assert_eq!(m.predict(u, i), model().predict(u, i), "({u:?},{i:?})");
    }
}

// --- scenario 7: poisoned input data ------------------------------------

#[test]
fn garbage_input_rows_are_quarantined_not_fatal() {
    let _s = scope();
    // A clean dataset rendered to u.data text, then vandalized.
    let d = cf_data::SyntheticConfig::small().generate();
    let mut text = Vec::new();
    cf_data::save_movielens(&d.matrix, &mut text).unwrap();
    let mut text = String::from_utf8(text).unwrap();
    text.push_str("1 1 NaN\n"); // non-finite rating
    text.push_str("2 2 999\n"); // out of scale
    text.push_str("3 potato 4\n"); // unparsable item
    text.push_str("4 4\n"); // missing rating
    text.push_str("0 5 3\n"); // 0 id in 1-based format

    let (vandalized, report) = cf_data::load_movielens_str_lenient(&text, "chaos").unwrap();
    assert!(report.malformed_lines >= 3);
    assert!(report.quarantine.non_finite >= 1);
    assert!(report.quarantine.out_of_scale >= 1);
    assert!(!report.is_clean());

    // The surviving data still fits and serves sound predictions.
    let m = Cfsf::fit(&vandalized.matrix, CfsfConfig::small()).unwrap();
    for (u, i) in requests().into_iter().step_by(17) {
        if let Some(p) = m.predict(u, i) {
            assert_in_scale(&m, p);
        }
    }
}

// --- scenario 8–10: online-phase faults ---------------------------------

#[test]
fn injected_empty_neighbor_selection_degrades_gracefully() {
    let _s = scope();
    let m = model();
    let (user, item) = (UserId::new(11), ItemId::new(23));
    m.clear_caches();
    let baseline = m.predict_with_breakdown(user, item).unwrap();

    fi::arm("online.empty_neighbors", fi::Policy::Always);
    m.clear_caches();
    let degraded = m.predict_with_breakdown(user, item).unwrap();
    assert!(fi::fired_count("online.empty_neighbors") > 0);
    assert_in_scale(m, degraded.fused);
    // No neighbors means no SUR'/SUIR': at most one estimator remains.
    assert!(
        degraded.level >= DegradeLevel::SingleEstimator,
        "level {:?} should reflect the missing neighbors",
        degraded.level
    );
    assert_eq!(degraded.k_used, 0);

    // Disarm: the degraded (empty) selection must not have been cached.
    fi::disarm("online.empty_neighbors");
    m.clear_caches();
    let healed = m.predict_with_breakdown(user, item).unwrap();
    assert_eq!(healed.fused, baseline.fused);
    assert_eq!(healed.level, baseline.level);
}

#[test]
fn injected_nan_estimator_is_dropped_not_served() {
    let _s = scope();
    let m = model();
    m.clear_caches();
    // A pair whose baseline SIR' exists, so the corruption has a target.
    let (user, item, baseline) = requests()
        .into_iter()
        .find_map(|(u, i)| {
            let b = m.predict_with_breakdown(u, i)?;
            b.sir.is_some().then_some((u, i, b))
        })
        .expect("some pair must have an SIR'");

    let dropped_before = counter("online.degrade.nonfinite_estimator");
    fi::arm("online.nan_estimator", fi::Policy::Always);
    let degraded = m.predict_with_breakdown(user, item).unwrap();
    assert_eq!(degraded.sir, None, "NaN estimator must be quarantined");
    assert_in_scale(m, degraded.fused);
    assert!(counter("online.degrade.nonfinite_estimator") > dropped_before);
    assert!(
        degraded.level > baseline.level,
        "losing an estimator must step down the ladder ({:?} -> {:?})",
        baseline.level,
        degraded.level
    );
}

#[test]
fn select_panic_degrades_then_recovers() {
    let _s = scope();
    let m = model();
    let (user, item) = (UserId::new(29), ItemId::new(31));
    m.clear_caches();
    let baseline = m.predict(user, item).unwrap();

    let panics_before = counter("online.select_panic");
    fi::arm("online.select_panic", fi::Policy::Once);
    m.clear_caches();
    // The panic is caught inside the selection; the request is served
    // from whatever rungs need no neighbors.
    let degraded = m.predict(user, item).unwrap();
    assert_in_scale(m, degraded);
    assert_eq!(counter("online.select_panic"), panics_before + 1);

    // The empty selection was not cached, so the very next request
    // recomputes and serves full quality again.
    let healed = m.predict(user, item).unwrap();
    assert_eq!(healed, baseline);
}

// --- scenario 11: cache poisoning --------------------------------------

#[test]
fn cache_poisoning_heals_itself() {
    let _s = scope();
    let m = model();
    let reqs = requests();
    m.clear_caches();
    let baseline: Vec<Option<f64>> = reqs.iter().map(|&(u, i)| m.predict(u, i)).collect();

    let resets_before = counter("cache.poison_reset");
    fi::arm("cache.poison", fi::Policy::Once);
    m.clear_caches();
    // The injected panic fires inside a cache insert while the shard
    // write lock is held, poisoning the shard; the worker is isolated.
    let out = m.predict_batch(&reqs, Some(2));
    assert!(fi::fired_count("cache.poison") == 1);
    assert!(
        counter("cache.poison_reset") > resets_before,
        "the poisoned shard must have been reset, not left fatal"
    );
    // After self-healing, serial serving matches the baseline exactly.
    let after: Vec<Option<f64>> = reqs.iter().map(|&(u, i)| m.predict(u, i)).collect();
    assert_eq!(after, baseline);
    // And the batch answered every request it could (all in-range here).
    assert!(out.iter().filter(|p| p.is_some()).count() >= reqs.len() - 1);
}

// --- scenario 12–13: worker panics in batch paths -----------------------

#[test]
fn batch_worker_panic_answers_none_for_that_request_only() {
    let _s = scope();
    let m = model();
    let reqs = requests();
    m.clear_caches();
    let baseline: Vec<Option<f64>> = reqs.iter().map(|&(u, i)| m.predict(u, i)).collect();

    let panics_before = counter("online.batch.request_panic");
    fi::arm("batch.worker_panic", fi::Policy::Nth(5));
    // One worker thread, but the batch engine serves requests in
    // strip-sorted order, so the 5th evaluation lands on some sorted
    // position — locate the dropped request instead of assuming order.
    let out = m.predict_batch(&reqs, Some(1));
    let dropped: Vec<usize> = (0..out.len()).filter(|&k| out[k].is_none()).collect();
    assert_eq!(dropped.len(), 1, "exactly one request's worker panicked");
    assert_eq!(counter("online.batch.request_panic"), panics_before + 1);
    for (k, (got, want)) in out.iter().zip(&baseline).enumerate() {
        if k != dropped[0] {
            assert_eq!(got, want, "request {k} must be unaffected");
        }
    }
}

#[test]
fn recommendation_survives_item_scorer_panics() {
    let _s = scope();
    let m = model();
    let user = UserId::new(7);
    m.clear_caches();
    // Full serial ranking, minus the item whose scorer will panic.
    let expected: Vec<(ItemId, f64)> = m
        .recommend_top_n(user, m.matrix().num_items())
        .into_iter()
        .filter(|&(i, _)| i != ItemId::new(2))
        .take(5)
        .collect();

    let panics_before = counter("online.recommend.item_panic");
    fi::arm("recommend.item_panic", fi::Policy::Nth(3));
    let got = m.recommend_top_n_parallel(user, 5, Some(1));
    assert_eq!(counter("online.recommend.item_panic"), panics_before + 1);
    assert_eq!(got, expected, "only the panicked candidate may drop out");
}

// --- scenario 14: faults mid-refresh ------------------------------------

#[test]
fn mid_refresh_fault_leaves_model_unchanged_and_retryable() {
    let _s = scope();
    let mut inc = IncrementalCfsf::new(fresh_model());
    let probes: Vec<(UserId, ItemId)> = (0..10)
        .map(|k| (UserId::new(k * 7 % 80), ItemId::new(k * 13 % 120)))
        .collect();
    let baseline: Vec<Option<f64>> = probes
        .iter()
        .map(|&(u, i)| inc.model().predict(u, i))
        .collect();

    // Two cells the training matrix does not cover yet.
    let mut unrated = (0..80u32)
        .flat_map(|u| (0..120u32).map(move |i| (u, i)))
        .filter(|&(u, i)| {
            inc.model()
                .matrix()
                .get(UserId::new(u), ItemId::new(i))
                .is_none()
        });
    let (u1, i1) = unrated.next().unwrap();
    let (u2, i2) = unrated.next().unwrap();
    drop(unrated);
    inc.add_rating(UserId::new(u1), ItemId::new(i1), 4.0)
        .unwrap();
    inc.add_rating(UserId::new(u2), ItemId::new(i2), 2.0)
        .unwrap();
    let pending = inc.pending();
    assert!(pending > 0);

    fi::arm("incremental.midrefresh", fi::Policy::Always);
    let e = inc.refresh();
    assert!(e.is_err(), "injected mid-refresh fault must abort");
    // Transactional: the served model is untouched, the delta retained.
    let after: Vec<Option<f64>> = probes
        .iter()
        .map(|&(u, i)| inc.model().predict(u, i))
        .collect();
    assert_eq!(after, baseline, "aborted refresh must not mutate the model");
    assert_eq!(
        inc.pending(),
        pending,
        "aborted refresh must keep the delta"
    );

    // Once the fault clears, the same refresh succeeds.
    fi::disarm("incremental.midrefresh");
    inc.refresh().unwrap();
    assert_eq!(inc.pending(), 0);
    assert_eq!(
        inc.model().matrix().get(UserId::new(u1), ItemId::new(i1)),
        Some(4.0)
    );
}

// --- scenario 15: tracing under faults ----------------------------------

#[test]
fn panic_isolated_degraded_request_is_trace_captured() {
    let _s = scope();
    let m = model();
    cf_obs::trace::clear();
    let (user, item) = (UserId::new(37), ItemId::new(41));

    // The injected selection panic is caught inside top_k_users; the
    // request is served degraded AND its trace must be tail-kept (the
    // anomaly note forces retention regardless of head sampling).
    fi::arm("online.select_panic", fi::Policy::Once);
    m.clear_caches();
    let b = m.predict_with_breakdown(user, item).unwrap();
    assert!(fi::fired_count("online.select_panic") > 0);
    assert_in_scale(m, b.fused);
    assert!(
        b.level > DegradeLevel::Full,
        "a request with no neighbors cannot be served at full quality"
    );

    let dump = cf_obs::trace::snapshot();
    let t = dump
        .degraded
        .iter()
        .find(|t| t.user == user.raw() && t.item == item.raw())
        .expect("the panic-isolated request must have a captured trace");
    assert!(
        t.notes.contains(&"online.select_panic"),
        "the caught panic must be noted on the trace: {t:?}"
    );
    assert!(t.why & cf_obs::trace::keep::NOTE != 0);
    assert_eq!(t.level, b.level.as_str());
    assert_eq!(t.k_used, 0, "selection panicked: no neighbors were used");
    cf_obs::trace::clear();
}

// --- scenario 16–19: self-healing refresh under faults -------------------

/// A drift config that never trips on its own, so each scenario controls
/// exactly when the rebuild happens.
fn parked_drift() -> DriftConfig {
    DriftConfig {
        mae_trip_pm: i64::MAX,
        mae_clear_pm: 0,
        hist_trip_pm: i64::MAX,
        hist_clear_pm: 0,
        fallback_trip_pm: i64::MAX,
        fallback_clear_pm: 0,
        trip_windows: u32::MAX,
        ..DriftConfig::default()
    }
}

/// First `n` unrated cells of the served matrix, usable as live ratings.
fn unrated_cells(m: &Cfsf, n: usize) -> Vec<(UserId, ItemId)> {
    let matrix = m.matrix();
    let mut out = Vec::with_capacity(n);
    'outer: for u in 0..matrix.num_users() {
        for i in 0..matrix.num_items() {
            let (user, item) = (UserId::from(u), ItemId::from(i));
            if matrix.get(user, item).is_none() {
                out.push((user, item));
                if out.len() == n {
                    break 'outer;
                }
            }
        }
    }
    out
}

#[test]
fn rebuild_panic_mid_swap_leaves_old_generation_serving() {
    let _s = scope();
    let healing = SelfHealingCfsf::new(fresh_model(), parked_drift()).unwrap();
    let cell = healing.cell();
    let gen0 = cell.load();
    let probes: Vec<(UserId, ItemId)> = requests().into_iter().step_by(29).collect();
    let baseline: Vec<Option<f64>> = probes.iter().map(|&(u, i)| gen0.predict(u, i)).collect();

    let scale = gen0.matrix().scale();
    for (user, item) in unrated_cells(&gen0, 8) {
        healing.add_rating(user, item, scale.min).unwrap();
    }
    let pending = healing.pending();
    assert!(pending > 0);

    let failed_before = counter("refresh.failed");
    let panicked_before = counter("refresh.panicked");
    fi::arm("refresh.worker_panic", fi::Policy::Once);
    let e = healing.refresh_now();
    assert!(e.is_err(), "the injected worker panic must surface as Err");
    assert_eq!(fi::fired_count("refresh.worker_panic"), 1);

    // The acceptance bar: old generation still serving, the failure
    // counted, the pending ratings restored for the retry.
    assert_eq!(healing.generation(), 0, "a failed rebuild must not publish");
    let after: Vec<Option<f64>> = probes
        .iter()
        .map(|&(u, i)| cell.load().predict(u, i))
        .collect();
    assert_eq!(after, baseline, "serving must be untouched by the panic");
    assert_eq!(counter("refresh.failed"), failed_before + 1);
    assert_eq!(counter("refresh.panicked"), panicked_before + 1);
    assert_eq!(
        healing.pending(),
        pending,
        "a panicked rebuild must not lose the ingested ratings"
    );
    // The drift/refresh state is visible on the stats surface.
    let snapshot = cf_obs::global().snapshot();
    assert!(snapshot.gauges.contains_key("drift.state"));
    assert!(snapshot.gauges.contains_key("refresh.generation"));

    // Once the fault clears, the very same refresh succeeds.
    fi::disarm("refresh.worker_panic");
    let report = healing.refresh_now().unwrap();
    assert_eq!(report.merged, pending);
    assert_eq!(healing.generation(), 1);
    assert_eq!(healing.pending(), 0);
}

#[test]
fn rebuild_failure_before_commit_restores_pending() {
    let _s = scope();
    let healing = SelfHealingCfsf::new(fresh_model(), parked_drift()).unwrap();
    let gen0 = healing.model();
    let scale = gen0.matrix().scale();
    for (user, item) in unrated_cells(&gen0, 4) {
        healing.add_rating(user, item, scale.max).unwrap();
    }
    let pending = healing.pending();

    let failed_before = counter("refresh.failed");
    let panicked_before = counter("refresh.panicked");
    fi::arm("refresh.fail_before_commit", fi::Policy::Once);
    let e = healing.refresh_now();
    assert!(
        e.is_err(),
        "the injected commit failure must surface as Err"
    );
    assert_eq!(healing.generation(), 0);
    assert_eq!(healing.pending(), pending, "failure must keep the delta");
    assert_eq!(counter("refresh.failed"), failed_before + 1);
    assert_eq!(
        counter("refresh.panicked"),
        panicked_before,
        "an error return is not a panic"
    );

    healing.refresh_now().unwrap();
    assert_eq!(healing.generation(), 1);
}

#[test]
fn rebuild_worker_stall_never_blocks_readers() {
    let _s = scope();
    let healing = SelfHealingCfsf::new(fresh_model(), parked_drift()).unwrap();
    let cell = healing.cell();
    let gen0 = cell.load();
    let scale = gen0.matrix().scale();
    for (user, item) in unrated_cells(&gen0, 8) {
        healing.add_rating(user, item, scale.min).unwrap();
    }

    // The stall (250ms) runs on the background worker; readers must keep
    // loading and predicting at full speed meanwhile.
    fi::arm("refresh.worker_stall", fi::Policy::Always);
    assert!(healing.trigger(), "background trigger must start a rebuild");
    let mut served = 0u64;
    let start = std::time::Instant::now();
    while healing.generation() == 0 {
        for &(u, i) in requests().iter().step_by(13) {
            let m = cell.load();
            if let Some(p) = m.predict(u, i) {
                assert_in_scale(&m, p);
                served += 1;
            }
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(20),
            "rebuild never finished behind the stall"
        );
    }
    healing.wait_idle();
    assert!(fi::fired_count("refresh.worker_stall") > 0);
    assert!(
        served > 0,
        "readers must have been served during the stalled rebuild"
    );
    assert_eq!(healing.generation(), 1);
}

#[test]
fn drift_storm_with_injected_faults_stays_rate_limited() {
    let _s = scope();
    // Thresholds at the floor: every ingested rating trips the detector.
    let healing = SelfHealingCfsf::new(fresh_model(), DriftConfig::sensitive()).unwrap();
    let gen0 = healing.model();
    let scale = gen0.matrix().scale();

    let started_before = counter("refresh.started");
    // Storm: a burst of maximally drifted ratings while the online path
    // is also under injected faults — the combination must not stack
    // rebuilds (cooldown + single-flight) and must not escape a panic.
    fi::arm_seeded("online.empty_neighbors", fi::Policy::Probability(0.25), 21);
    for (user, item) in unrated_cells(&gen0, 12) {
        let _ = healing.add_rating(user, item, scale.max);
    }
    healing.wait_idle();
    let launched = counter("refresh.started") - started_before;
    assert!(
        launched >= 1,
        "a floor-threshold storm must trigger at least one rebuild"
    );
    assert!(
        launched <= 2,
        "cooldown + single-flight must cap the storm, got {launched} rebuilds"
    );
    assert_ne!(healing.drift_state(), DriftState::Rebuilding);
    // The storm's rebuilds all published or failed visibly; either way
    // the serving cell answers soundly afterwards.
    let m = healing.model();
    for (u, i) in requests().into_iter().step_by(29) {
        if let Some(p) = m.predict(u, i) {
            assert_in_scale(&m, p);
        }
    }
}

// --- scenario 20: probabilistic chaos soak ------------------------------

#[test]
fn probabilistic_chaos_soak_serves_only_sound_predictions() {
    let _s = scope();
    let m = model();
    fi::arm_seeded("online.empty_neighbors", fi::Policy::Probability(0.25), 11);
    fi::arm_seeded("online.nan_estimator", fi::Policy::Probability(0.25), 12);
    fi::arm_seeded("batch.worker_panic", fi::Policy::Probability(0.02), 13);
    fi::arm_seeded("cache.poison", fi::Policy::Probability(0.02), 14);

    m.clear_caches();
    let reqs = requests();
    let out = m.predict_batch(&reqs, Some(4));
    // Under a storm of faults: no escaped panic (we got here), and every
    // answer that was served is finite and inside the rating scale.
    for p in out.iter().flatten() {
        assert_in_scale(m, *p);
    }
    assert!(
        fi::fired_count("online.empty_neighbors") + fi::fired_count("online.nan_estimator") > 0,
        "the soak must actually have injected faults"
    );

    // Disarm and the same model serves clean full-quality traffic again.
    fi::disarm_all();
    m.clear_caches();
    let healed = m.predict_batch(&reqs, Some(4));
    let serial: Vec<Option<f64>> = reqs.iter().map(|&(u, i)| m.predict(u, i)).collect();
    assert_eq!(healed, serial);
}
