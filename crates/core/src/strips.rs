//! Per-item serving strips: the GIS top-`M` lists, restructured once at
//! fit time into structure-of-arrays form for the online kernels.
//!
//! [`cf_similarity::Gis`] stores `(ItemId, f64)` pairs ordered by
//! descending similarity — the right shape for ranking, the wrong shape
//! for the Eq. 12 kernels, which want the column indices, similarities,
//! and squared similarities as three contiguous `f64`/`u32` strips. The
//! fast path used to gather those strips into thread-local scratch on
//! every request; since the GIS and `M` are fixed for the lifetime of a
//! fitted model, the gather is done once per item here instead
//! (~2.4 MB at paper scale), and serving reads the strips in place.
//!
//! Each strip starts on an 8-element boundary (64 bytes for the `f64`
//! strips, relative to the allocation base — Vec bases are allocator-
//! aligned, not line-aligned, but a fixed 64-byte phase means every strip
//! spans the minimum number of cache lines and no strip straddles an
//! extra line at each end). The padding tail is never read: real lengths
//! are tracked separately from the padded starts.

use cf_matrix::ItemId;
use cf_similarity::Gis;

/// Strips start every `STRIP_ALIGN` elements: 8 × 8-byte `f64` = 64 B,
/// one cache line.
const STRIP_ALIGN: usize = 8;

/// Flattened top-`M` similar-item strips for every item, indexed by
/// [`ItemStrips::try_get`]. Rebuilt whenever the GIS or `M` changes.
#[derive(Debug, Clone)]
pub(crate) struct ItemStrips {
    /// Padded start of item `i`'s strip (a multiple of [`STRIP_ALIGN`]).
    offsets: Vec<u32>,
    /// Real (unpadded) length of item `i`'s strip.
    lens: Vec<u32>,
    /// Similar-item column indices (`u32` halves the index bandwidth).
    idx: Vec<u32>,
    /// Item-item similarities, descending per strip.
    sim: Vec<f64>,
    /// Squared similarities, hoisted out of the pair-weight loop.
    sim2: Vec<f64>,
}

impl ItemStrips {
    /// Flattens the top-`m` GIS list of every item, padding each strip to
    /// the next [`STRIP_ALIGN`] boundary (pad values are zeros and never
    /// read — `lens` bounds every access).
    pub(crate) fn build(gis: &Gis, m: usize) -> Self {
        let num_items = gis.num_items();
        let mut offsets = Vec::with_capacity(num_items);
        let mut lens = Vec::with_capacity(num_items);
        let mut idx = Vec::new();
        let mut sim = Vec::new();
        let mut sim2 = Vec::new();
        for i in 0..num_items {
            debug_assert_eq!(idx.len() % STRIP_ALIGN, 0);
            offsets.push(idx.len() as u32);
            let list = gis.top_m(ItemId::from(i), m);
            lens.push(list.len() as u32);
            for &(i_s, s) in list {
                idx.push(i_s.index() as u32);
                sim.push(s);
                sim2.push(s * s);
            }
            let padded = list.len().next_multiple_of(STRIP_ALIGN);
            idx.resize(padded + offsets[i] as usize, 0);
            sim.resize(idx.len(), 0.0);
            sim2.resize(idx.len(), 0.0);
        }
        Self {
            offsets,
            lens,
            idx,
            sim,
            sim2,
        }
    }

    /// The `(indices, similarities, squared similarities)` strips of
    /// `item`, each of the same length (≤ `M`), or `None` when `item` is
    /// outside the strips — serving degrades instead of panicking when an
    /// id and the fitted structures disagree.
    #[inline]
    pub(crate) fn try_get(&self, item: ItemId) -> Option<(&[u32], &[f64], &[f64])> {
        let lo = *self.offsets.get(item.index())? as usize;
        let hi = lo + *self.lens.get(item.index())? as usize;
        Some((&self.idx[lo..hi], &self.sim[lo..hi], &self.sim2[lo..hi]))
    }

    /// Total bytes held by the strips (footprint gauge).
    pub(crate) fn bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.lens.len() * std::mem::size_of::<u32>()
            + self.idx.len() * std::mem::size_of::<u32>()
            + self.sim.len() * std::mem::size_of::<f64>()
            + self.sim2.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cf_matrix::{ItemId, MatrixBuilder, UserId};
    use cf_similarity::GisConfig;

    fn gis() -> Gis {
        let mut b = MatrixBuilder::with_dims(6, 5);
        for u in 0..6u32 {
            for i in 0..5u32 {
                if (u + i) % 3 != 0 {
                    b.push(UserId::new(u), ItemId::new(i), f64::from((u * i) % 5 + 1));
                }
            }
        }
        Gis::build(&b.build().unwrap(), &GisConfig::default())
    }

    #[test]
    fn strips_mirror_gis_lists() {
        let g = gis();
        for m in [1, 3, 95] {
            let strips = ItemStrips::build(&g, m);
            for i in 0..g.num_items() {
                let item = ItemId::from(i);
                let (idx, sim, sim2) = strips.try_get(item).unwrap();
                let list = g.top_m(item, m);
                assert_eq!(idx.len(), list.len());
                assert_eq!(sim.len(), list.len());
                assert_eq!(sim2.len(), list.len());
                for (k, &(i_s, s)) in list.iter().enumerate() {
                    assert_eq!(idx[k] as usize, i_s.index());
                    assert_eq!(sim[k], s);
                    assert_eq!(sim2[k], s * s);
                }
            }
        }
    }

    #[test]
    fn strips_start_on_align_boundaries() {
        let g = gis();
        for m in [1, 3, 95] {
            let strips = ItemStrips::build(&g, m);
            for (i, &off) in strips.offsets.iter().enumerate() {
                assert_eq!(off as usize % STRIP_ALIGN, 0, "item {i}, m={m}");
            }
            // The backing arrays end padded too.
            assert_eq!(strips.idx.len() % STRIP_ALIGN, 0);
            assert_eq!(strips.sim.len(), strips.idx.len());
            assert_eq!(strips.sim2.len(), strips.idx.len());
        }
    }

    #[test]
    fn out_of_range_items_degrade_to_none() {
        let strips = ItemStrips::build(&gis(), 3);
        assert!(strips.try_get(ItemId::new(4)).is_some());
        assert!(strips.try_get(ItemId::new(5)).is_none());
        assert!(strips.try_get(ItemId::new(9999)).is_none());
    }

    #[test]
    fn bytes_counts_all_arrays() {
        let strips = ItemStrips::build(&gis(), 3);
        let expect = strips.offsets.len() * 4
            + strips.lens.len() * 4
            + strips.idx.len() * 4
            + strips.sim.len() * 8
            + strips.sim2.len() * 8;
        assert_eq!(strips.bytes(), expect);
        assert!(strips.bytes() > 0);
    }
}
