//! Per-item serving strips: the GIS top-`M` lists, restructured once at
//! fit time into structure-of-arrays form for the online kernels.
//!
//! [`cf_similarity::Gis`] stores `(ItemId, f64)` pairs ordered by
//! descending similarity — the right shape for ranking, the wrong shape
//! for the Eq. 12 kernels, which want the column indices, similarities,
//! and squared similarities as three contiguous `f64`/`u32` strips. The
//! fast path used to gather those strips into thread-local scratch on
//! every request; since the GIS and `M` are fixed for the lifetime of a
//! fitted model, the gather is done once per item here instead
//! (~2.4 MB at paper scale), and serving reads the strips in place.

use cf_matrix::ItemId;
use cf_similarity::Gis;

/// Flattened top-`M` similar-item strips for every item, indexed by
/// [`ItemStrips::try_get`]. Rebuilt whenever the GIS or `M` changes.
#[derive(Debug, Clone)]
pub(crate) struct ItemStrips {
    /// Strip boundaries: item `i` owns `offsets[i]..offsets[i + 1]`.
    offsets: Vec<u32>,
    /// Similar-item column indices (`u32` halves the index bandwidth).
    idx: Vec<u32>,
    /// Item-item similarities, descending per strip.
    sim: Vec<f64>,
    /// Squared similarities, hoisted out of the pair-weight loop.
    sim2: Vec<f64>,
}

impl ItemStrips {
    /// Flattens the top-`m` GIS list of every item.
    pub(crate) fn build(gis: &Gis, m: usize) -> Self {
        let num_items = gis.num_items();
        let mut offsets = Vec::with_capacity(num_items + 1);
        let mut idx = Vec::new();
        let mut sim = Vec::new();
        let mut sim2 = Vec::new();
        offsets.push(0);
        for i in 0..num_items {
            for &(i_s, s) in gis.top_m(ItemId::from(i), m) {
                idx.push(i_s.index() as u32);
                sim.push(s);
                sim2.push(s * s);
            }
            offsets.push(idx.len() as u32);
        }
        Self {
            offsets,
            idx,
            sim,
            sim2,
        }
    }

    /// The `(indices, similarities, squared similarities)` strips of
    /// `item`, each of the same length (≤ `M`), or `None` when `item` is
    /// outside the strips — serving degrades instead of panicking when an
    /// id and the fitted structures disagree.
    #[inline]
    pub(crate) fn try_get(&self, item: ItemId) -> Option<(&[u32], &[f64], &[f64])> {
        let lo = *self.offsets.get(item.index())? as usize;
        let hi = *self.offsets.get(item.index() + 1)? as usize;
        Some((&self.idx[lo..hi], &self.sim[lo..hi], &self.sim2[lo..hi]))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cf_matrix::{ItemId, MatrixBuilder, UserId};
    use cf_similarity::GisConfig;

    fn gis() -> Gis {
        let mut b = MatrixBuilder::with_dims(6, 5);
        for u in 0..6u32 {
            for i in 0..5u32 {
                if (u + i) % 3 != 0 {
                    b.push(UserId::new(u), ItemId::new(i), f64::from((u * i) % 5 + 1));
                }
            }
        }
        Gis::build(&b.build().unwrap(), &GisConfig::default())
    }

    #[test]
    fn strips_mirror_gis_lists() {
        let g = gis();
        for m in [1, 3, 95] {
            let strips = ItemStrips::build(&g, m);
            for i in 0..g.num_items() {
                let item = ItemId::from(i);
                let (idx, sim, sim2) = strips.try_get(item).unwrap();
                let list = g.top_m(item, m);
                assert_eq!(idx.len(), list.len());
                assert_eq!(sim.len(), list.len());
                assert_eq!(sim2.len(), list.len());
                for (k, &(i_s, s)) in list.iter().enumerate() {
                    assert_eq!(idx[k] as usize, i_s.index());
                    assert_eq!(sim[k], s);
                    assert_eq!(sim2[k], s * s);
                }
            }
        }
    }

    #[test]
    fn out_of_range_items_degrade_to_none() {
        let strips = ItemStrips::build(&gis(), 3);
        assert!(strips.try_get(ItemId::new(4)).is_some());
        assert!(strips.try_get(ItemId::new(5)).is_none());
        assert!(strips.try_get(ItemId::new(9999)).is_none());
    }
}
