//! Prediction explanations — the "because you liked … and users like you
//! rated …" surface a production recommender needs on top of raw scores.
//!
//! [`Cfsf::explain`] reruns the online phase for one request and reports
//! which similar items and like-minded users actually moved the
//! prediction, each with its contribution weight. The contributions are
//! the very terms of the Eq. 12 sums, read at full `f64` precision from
//! the dense ratings — so an evidence-weighted reconstruction of an
//! estimator matches the served (quantized-plane, DESIGN.md §6c) value to
//! within the plane quantization step, not bit-exactly.

use cf_matrix::{ItemId, UserId};
use cf_similarity::smoothing_weight;

use crate::{Cfsf, PredictionBreakdown};

/// One similar item's contribution to `SIR'`.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemEvidence {
    /// The similar item.
    pub item: ItemId,
    /// Its GIS similarity to the active item.
    pub similarity: f64,
    /// The active user's (possibly smoothed) rating of it.
    pub rating: f64,
    /// Whether that rating was user-given (vs. imputed by smoothing).
    pub original: bool,
    /// The term's normalized weight within the `SIR'` sum (sums to 1).
    pub weight: f64,
}

/// One like-minded user's contribution to `SUR'`.
#[derive(Debug, Clone, PartialEq)]
pub struct UserEvidence {
    /// The like-minded user.
    pub user: UserId,
    /// Their Eq. 10 similarity to the active user.
    pub similarity: f64,
    /// Their (possibly smoothed) rating of the active item.
    pub rating: f64,
    /// Whether that rating was user-given.
    pub original: bool,
    /// The term's normalized weight within the `SUR'` sum (sums to 1).
    pub weight: f64,
}

/// A full explanation of one prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The component values and the fused prediction.
    pub breakdown: PredictionBreakdown,
    /// Similar-item evidence, strongest weight first.
    pub item_evidence: Vec<ItemEvidence>,
    /// Like-minded-user evidence, strongest weight first.
    pub user_evidence: Vec<UserEvidence>,
}

impl Cfsf {
    /// Explains the prediction for `(user, item)`: the breakdown plus the
    /// individual evidence terms, strongest first. Returns `None` exactly
    /// when [`Cfsf::predict`] would.
    pub fn explain(&self, user: UserId, item: ItemId) -> Option<Explanation> {
        let breakdown = self.predict_with_breakdown(user, item)?;
        let eps = self.config.w;

        // Reconstruct the SIR' terms.
        let row_b = self.dense.row(user);
        let mut item_evidence: Vec<ItemEvidence> = Vec::new();
        let mut sir_den = 0.0;
        for &(i_s, sim_s) in self.gis.top_m(item, self.config.m) {
            let r = row_b[i_s.index()];
            if r.is_nan() {
                continue;
            }
            let original = self.dense.is_original(user, i_s);
            let w = smoothing_weight(original, eps) * sim_s;
            sir_den += w;
            item_evidence.push(ItemEvidence {
                item: i_s,
                similarity: sim_s,
                rating: r,
                original,
                weight: w, // normalized below
            });
        }
        if sir_den > f64::EPSILON {
            for e in &mut item_evidence {
                e.weight /= sir_den;
            }
        }
        item_evidence.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.item.cmp(&b.item)));

        // Reconstruct the SUR' terms.
        let mut user_evidence: Vec<UserEvidence> = Vec::new();
        let mut sur_den = 0.0;
        for &(u_t, sim_t) in self.top_k_users(user).iter() {
            let Some(r) = self.dense.get(u_t, item) else {
                continue;
            };
            let original = self.dense.is_original(u_t, item);
            let w = smoothing_weight(original, eps) * sim_t;
            sur_den += w;
            user_evidence.push(UserEvidence {
                user: u_t,
                similarity: sim_t,
                rating: r,
                original,
                weight: w,
            });
        }
        if sur_den > f64::EPSILON {
            for e in &mut user_evidence {
                e.weight /= sur_den;
            }
        }
        user_evidence.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.user.cmp(&b.user)));

        Some(Explanation {
            breakdown,
            item_evidence,
            user_evidence,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::CfsfConfig;
    use cf_data::SyntheticConfig;

    fn model() -> Cfsf {
        let d = SyntheticConfig::small().generate();
        Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
    }

    #[test]
    fn evidence_weights_are_normalized_and_sorted() {
        let m = model();
        let mut seen = 0;
        for u in 0..15usize {
            for i in 0..15usize {
                let Some(e) = m.explain(UserId::from(u), ItemId::from(i)) else {
                    continue;
                };
                if !e.item_evidence.is_empty() {
                    let total: f64 = e.item_evidence.iter().map(|x| x.weight).sum();
                    assert!((total - 1.0).abs() < 1e-9, "item weights sum {total}");
                    assert!(e
                        .item_evidence
                        .windows(2)
                        .all(|w| w[0].weight >= w[1].weight));
                    seen += 1;
                }
                if !e.user_evidence.is_empty() {
                    let total: f64 = e.user_evidence.iter().map(|x| x.weight).sum();
                    assert!((total - 1.0).abs() < 1e-9, "user weights sum {total}");
                }
            }
        }
        assert!(seen > 10, "too few explanations had item evidence");
    }

    #[test]
    fn explanation_is_consistent_with_prediction() {
        use cf_matrix::Predictor;
        let m = model();
        for u in 0..10usize {
            let e = m.explain(UserId::from(u), ItemId::new(3));
            let p = m.predict(UserId::from(u), ItemId::new(3));
            assert_eq!(e.map(|x| x.breakdown.fused), p);
        }
    }

    #[test]
    fn evidence_terms_reconstruct_sir_component() {
        let m = model();
        for u in 0..20usize {
            let Some(e) = m.explain(UserId::from(u), ItemId::new(7)) else {
                continue;
            };
            let Some(sir) = e.breakdown.sir else { continue };
            let recon: f64 = e.item_evidence.iter().map(|x| x.weight * x.rating).sum();
            // Evidence ratings are exact f64; the served SIR' reads
            // quantized planes, so the gap is bounded by the plane step.
            let tol = m.plane_quant_step() + 1e-9;
            assert!((recon - sir).abs() < tol, "recon {recon} vs sir {sir}");
            return; // one verified case is enough
        }
        panic!("no explanation with a SIR' component found");
    }

    #[test]
    fn evidence_counts_respect_m_and_k() {
        let m = model();
        for u in 0..8usize {
            if let Some(e) = m.explain(UserId::from(u), ItemId::new(2)) {
                assert!(e.item_evidence.len() <= m.config().m);
                assert!(e.user_evidence.len() <= m.config().k);
            }
        }
    }

    #[test]
    fn out_of_range_gives_none() {
        let m = model();
        assert!(m.explain(UserId::new(9_999), ItemId::new(0)).is_none());
    }
}
