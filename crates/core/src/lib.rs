//! # cfsf-core — the CFSF algorithm (the paper's contribution)
//!
//! CFSF (*Collaborative Filtering using Smoothing and Fusing*) turns CF
//! into a **local** prediction problem. This crate implements both phases
//! exactly as §IV of the paper describes:
//!
//! **Offline** ([`Cfsf::fit`]):
//! 1. build the Global Item Similarity matrix (GIS, Eq. 5) over the whole
//!    training matrix,
//! 2. cluster users with K-means under PCC similarity (Eq. 6),
//! 3. smooth every unrated cell within its user cluster (Eq. 7–8),
//! 4. rank clusters per user into the iCluster structure (Eq. 9).
//!
//! **Online** ([`Cfsf::predict`]): for a request `(u_b, i_a)`,
//! 1. take the top `M` similar items straight off the GIS,
//! 2. harvest like-minded-user candidates cluster-by-cluster in iCluster
//!    order and rank them with the smoothing-aware weighted PCC
//!    (Eq. 10/11), keeping the top `K` (cached per user),
//! 3. over the resulting local `M × K` matrix compute the three
//!    estimators `SIR'`, `SUR'`, `SUIR'` (Eq. 12, pair weight Eq. 13),
//! 4. fuse them with `λ` and `δ` (Eq. 14).
//!
//! The online phase costs `O(M·K)` per request — independent of the size
//! of the full item-user matrix, which is the paper's scalability claim.
//!
//! ```
//! use cf_data::SyntheticConfig;
//! use cf_matrix::{Predictor, UserId, ItemId};
//! use cfsf_core::{Cfsf, CfsfConfig};
//!
//! let data = SyntheticConfig::small().generate();
//! let model = Cfsf::fit(&data.matrix, CfsfConfig::small()).unwrap();
//! let r = model.predict(UserId::new(0), ItemId::new(5)).unwrap();
//! assert!((1.0..=5.0).contains(&r));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod batch;
pub mod cache;
mod config;
mod degrade;
mod error;
mod explain;
mod fusion;
mod incremental;
mod model;
mod online;
mod persist;
pub mod refresh;
mod strips;
pub mod topk;

pub use cf_matrix::PlanePrecision;
pub use config::CfsfConfig;
pub use degrade::DegradeLevel;
pub use error::CfsfError;
pub use explain::{Explanation, ItemEvidence, UserEvidence};
pub use fusion::{fuse, FusionWeights};
pub use incremental::{IncrementalCfsf, RefreshKind, RefreshStats};
pub use model::{Cfsf, OfflineSummary};
pub use online::PredictionBreakdown;
pub use persist::{crc32, PersistError, RecoveryReport};
pub use refresh::{
    DriftConfig, DriftMonitor, DriftSignals, DriftState, GenCell, RebuildReport, SelfHealingCfsf,
};
