//! Incremental model maintenance — the paper's future-work items "how it
//! can keep GIS up-to-date" and absorbing new ratings without refitting
//! from scratch (§VI).
//!
//! [`IncrementalCfsf`] wraps a fitted [`Cfsf`] and accepts a stream of
//! new ratings. Predictions always reflect the *last refresh*; a refresh
//! merges the pending ratings into the training matrix and then either:
//!
//! - **partial** — incrementally rebuilds the GIS rows of the touched
//!   items ([`cf_similarity::Gis::rebuild_items`]), re-runs smoothing and
//!   iCluster over the merged matrix while keeping the K-means
//!   assignment fixed, and clears the online caches; or
//! - **full** — refits everything, K-means included.
//!
//! Partial refreshes are exact for the GIS (up to neighbor-cap eviction,
//! see `rebuild_items`) and for smoothing/iCluster; the one approximation
//! is the frozen cluster assignment, which drifts as users accumulate
//! ratings. The refresh policy therefore escalates to a full refit once
//! enough churn accumulates.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use cf_cluster::{ICluster, Smoother};
use cf_matrix::{DenseRatings, ItemId, MatrixBuilder, Predictor, RatingMatrix, UserId};

use crate::{Cfsf, CfsfError};

/// What a refresh did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshKind {
    /// Incremental GIS patch + re-smoothing with frozen clusters.
    Partial,
    /// Full offline refit (K-means included).
    Full,
}

/// Outcome report of [`IncrementalCfsf::refresh`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshStats {
    /// Which path ran.
    pub kind: RefreshKind,
    /// Ratings merged into the matrix by this refresh.
    pub merged: usize,
    /// Distinct items whose GIS rows were rebuilt (partial only).
    pub items_rebuilt: usize,
    /// Wall time of the refresh.
    pub elapsed: Duration,
}

/// A [`Cfsf`] model that absorbs new ratings over time.
pub struct IncrementalCfsf {
    model: Cfsf,
    pending: Vec<(UserId, ItemId, f64)>,
    stale_items: BTreeSet<ItemId>,
    /// Ratings absorbed since the last *full* refit; drives escalation.
    churn_since_full: usize,
    /// Escalate to a full refit when churn exceeds this fraction of the
    /// matrix's ratings (default 10%).
    pub full_refit_fraction: f64,
}

impl IncrementalCfsf {
    /// Wraps a fitted model.
    pub fn new(model: Cfsf) -> Self {
        Self {
            model,
            pending: Vec::new(),
            stale_items: BTreeSet::new(),
            churn_since_full: 0,
            full_refit_fraction: 0.10,
        }
    }

    /// The wrapped model as of the last refresh.
    pub fn model(&self) -> &Cfsf {
        &self.model
    }

    /// Queues one new rating. The rating must be on the matrix's scale,
    /// address an existing user/item slot, and not duplicate an existing
    /// or pending cell. It becomes visible to predictions at the next
    /// [`Self::refresh`].
    pub fn add_rating(&mut self, user: UserId, item: ItemId, rating: f64) -> Result<(), CfsfError> {
        let m = self.model.matrix();
        if user.index() >= m.num_users() || item.index() >= m.num_items() {
            return Err(CfsfError::InvalidParameter {
                name: "rating",
                message: format!("({user:?}, {item:?}) is outside the matrix"),
            });
        }
        if !m.scale().contains(rating) || !rating.is_finite() {
            return Err(CfsfError::InvalidParameter {
                name: "rating",
                message: format!("{rating} is off the {:?} scale", m.scale()),
            });
        }
        if m.get(user, item).is_some()
            || self.pending.iter().any(|&(u, i, _)| u == user && i == item)
        {
            return Err(CfsfError::InvalidParameter {
                name: "rating",
                message: format!("cell ({user:?}, {item:?}) is already rated"),
            });
        }
        // A freshly observed rating is ground truth for a cell the model
        // could already predict: feed |prediction − rating| into the
        // rolling online-MAE window so quality drift is visible on the
        // telemetry endpoint before the next refresh folds the rating in.
        if let Some(pred) = self.model.predict(user, item) {
            cf_obs::quality::observe_prediction_error((pred - rating).abs());
        }
        self.pending.push((user, item, rating));
        self.stale_items.insert(item);
        Ok(())
    }

    /// Number of ratings waiting for the next refresh.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Merges pending ratings and updates the model. Chooses
    /// [`RefreshKind::Partial`] unless accumulated churn since the last
    /// full refit exceeds [`Self::full_refit_fraction`] of the matrix.
    /// No-op (partial, 0 merged) when nothing is pending.
    ///
    /// The refresh is **transactional**: every rebuilt structure is
    /// staged off to the side and committed with plain field moves only
    /// after all fallible work succeeded. On `Err`, the model still
    /// serves its pre-refresh state and the pending ratings remain
    /// queued, so the refresh can simply be retried.
    pub fn refresh(&mut self) -> Result<RefreshStats, CfsfError> {
        let start = Instant::now();
        if self.pending.is_empty() {
            return Ok(RefreshStats {
                kind: RefreshKind::Partial,
                merged: 0,
                items_rebuilt: 0,
                elapsed: start.elapsed(),
            });
        }

        let merged_matrix = self.abortable(Self::merged_matrix)?;
        let merged = self.pending.len();
        // Churn is committed only when the refresh itself commits — an
        // aborted refresh must not inch the escalation policy forward.
        let would_be_churn = self.churn_since_full + merged;
        let escalate =
            would_be_churn as f64 > self.full_refit_fraction * merged_matrix.num_ratings() as f64;

        let stats = if escalate {
            self.abortable(|s| s.full_refresh(&merged_matrix))?;
            self.churn_since_full = 0;
            cf_obs::counter!("incremental.refresh.full").inc();
            RefreshStats {
                kind: RefreshKind::Full,
                merged,
                items_rebuilt: 0,
                elapsed: start.elapsed(),
            }
        } else {
            let items: Vec<ItemId> = self.stale_items.iter().copied().collect();
            self.abortable(|s| s.partial_refresh(&merged_matrix, &items))?;
            self.churn_since_full = would_be_churn;
            cf_obs::counter!("incremental.refresh.partial").inc();
            cf_obs::counter!("incremental.items_rebuilt").add(items.len() as u64);
            RefreshStats {
                kind: RefreshKind::Partial,
                merged,
                items_rebuilt: items.len(),
                elapsed: start.elapsed(),
            }
        };
        self.pending.clear();
        self.stale_items.clear();
        cf_obs::histogram!("incremental.refresh_ns").record_duration(start.elapsed());
        Ok(stats)
    }

    /// Forces a full refit regardless of churn. Transactional like
    /// [`Self::refresh`].
    pub fn rebuild(&mut self) -> Result<RefreshStats, CfsfError> {
        let start = Instant::now();
        let merged = self.pending.len();
        let matrix = self.abortable(Self::merged_matrix)?;
        self.abortable(|s| s.full_refresh(&matrix))?;
        self.pending.clear();
        self.stale_items.clear();
        self.churn_since_full = 0;
        Ok(RefreshStats {
            kind: RefreshKind::Full,
            merged,
            items_rebuilt: 0,
            elapsed: start.elapsed(),
        })
    }

    /// Runs one fallible refresh stage, counting aborts.
    fn abortable<T>(
        &mut self,
        stage: impl FnOnce(&mut Self) -> Result<T, CfsfError>,
    ) -> Result<T, CfsfError> {
        stage(self).inspect_err(|_| {
            cf_obs::counter!("incremental.refresh.aborted").inc();
        })
    }

    fn merged_matrix(&mut self) -> Result<RatingMatrix, CfsfError> {
        let old = self.model.matrix();
        let mut b = MatrixBuilder::with_dims(old.num_users(), old.num_items()).scale(old.scale());
        b.reserve(old.num_ratings() + self.pending.len());
        for (u, i, r) in old.triplets() {
            b.push(u, i, r);
        }
        for &(u, i, r) in &self.pending {
            b.push(u, i, r);
        }
        // `add_rating` validated every pending rating, so this only fails
        // if the matrix itself was corrupted — degrade to an error, keep
        // serving the old model.
        b.build().map_err(|e| CfsfError::RefreshFailed {
            message: format!("merged matrix failed validation: {e}"),
        })
    }

    /// Full refit, staged: the new model is built completely before the
    /// old one is replaced.
    fn full_refresh(&mut self, merged: &RatingMatrix) -> Result<(), CfsfError> {
        let new_model = Cfsf::fit(merged, self.model.config().clone())?;
        #[cfg(feature = "faultinject")]
        if cf_faultinject::fires("incremental.midrefresh") {
            return Err(CfsfError::RefreshFailed {
                message: "injected fault before commit".into(),
            });
        }
        self.model = new_model;
        Ok(())
    }

    /// GIS patch + re-smooth + re-rank with the existing clusters. All
    /// rebuilt structures are staged into locals; the commit below the
    /// fault point is pure field moves, so a failure anywhere above it
    /// leaves the served model untouched.
    fn partial_refresh(
        &mut self,
        merged: &RatingMatrix,
        items: &[ItemId],
    ) -> Result<(), CfsfError> {
        let model = &mut self.model;
        let mut gis_config = model.config.gis.clone();
        if let Some(cap) = gis_config.max_neighbors {
            gis_config.max_neighbors = Some(cap.max(model.config.m));
        }
        gis_config.threads = gis_config.threads.or(model.config.threads);
        let mut gis = model.gis.clone();
        gis.rebuild_items(merged, items, &gis_config);

        let smoothed = Smoother::smooth(merged, &model.clusters, model.config.threads);
        let icluster = ICluster::build(merged, &smoothed, model.config.threads);
        let dense = if model.config.use_smoothing {
            smoothed.dense.clone()
        } else {
            DenseRatings::from_sparse(merged)
        };
        let planes = cf_matrix::WeightPlanes::from_dense_with(
            &dense,
            model.config.w,
            model.config.plane_precision,
        );
        let strips = crate::strips::ItemStrips::build(&gis, model.config.m);
        #[cfg(feature = "faultinject")]
        if cf_faultinject::fires("incremental.midrefresh") {
            return Err(CfsfError::RefreshFailed {
                message: "injected fault before commit".into(),
            });
        }

        // Commit — infallible from here on.
        model.gis = gis;
        model.dense = dense;
        model.planes = planes;
        model.strips = strips;
        model.smoothed = smoothed;
        model.icluster = icluster;
        model.matrix = merged.clone();
        model.clear_caches();
        model.publish_footprint();
        Ok(())
    }
}

impl Predictor for IncrementalCfsf {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        self.model.predict(user, item)
    }

    fn name(&self) -> &'static str {
        "CFSF-incremental"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::CfsfConfig;
    use cf_data::SyntheticConfig;

    fn setup() -> (cf_data::Dataset, IncrementalCfsf) {
        let d = SyntheticConfig::small().generate();
        let model = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        (d, IncrementalCfsf::new(model))
    }

    fn unrated_cell(m: &RatingMatrix, from: u32) -> (UserId, ItemId) {
        for u in from..m.num_users() as u32 {
            for i in 0..m.num_items() as u32 {
                if m.get(UserId::new(u), ItemId::new(i)).is_none() {
                    return (UserId::new(u), ItemId::new(i));
                }
            }
        }
        panic!("matrix is dense");
    }

    #[test]
    fn add_rating_validates_everything() {
        let (d, mut inc) = setup();
        let (u, i) = unrated_cell(&d.matrix, 0);
        assert!(inc.add_rating(u, i, 4.0).is_ok());
        // duplicate pending
        assert!(inc.add_rating(u, i, 4.0).is_err());
        // existing cell
        let (eu, ei, _) = d.matrix.triplets().next().unwrap();
        assert!(inc.add_rating(eu, ei, 3.0).is_err());
        // off scale, out of range
        let (u2, i2) = unrated_cell(&d.matrix, 40);
        assert!(inc.add_rating(u2, i2, 9.0).is_err());
        assert!(inc
            .add_rating(UserId::new(9999), ItemId::new(0), 3.0)
            .is_err());
        assert_eq!(inc.pending(), 1);
    }

    #[test]
    fn partial_refresh_absorbs_ratings() {
        let (d, mut inc) = setup();
        let (u, i) = unrated_cell(&d.matrix, 3);
        inc.add_rating(u, i, 5.0).unwrap();
        let stats = inc.refresh().unwrap();
        assert_eq!(stats.kind, RefreshKind::Partial);
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.items_rebuilt, 1);
        assert_eq!(inc.pending(), 0);
        // the rating is now part of the training matrix
        assert_eq!(inc.model().matrix().get(u, i), Some(5.0));
        // and predictions still work everywhere
        let r = inc.predict(u, ItemId::new(0)).unwrap();
        assert!((1.0..=5.0).contains(&r));
    }

    #[test]
    fn empty_refresh_is_a_noop() {
        let (_, mut inc) = setup();
        let stats = inc.refresh().unwrap();
        assert_eq!(stats.merged, 0);
        assert_eq!(stats.kind, RefreshKind::Partial);
    }

    #[test]
    fn heavy_churn_escalates_to_full_refit() {
        let (d, mut inc) = setup();
        inc.full_refit_fraction = 0.0005; // escalate almost immediately
        let mut added = 0;
        'outer: for u in 0..d.matrix.num_users() as u32 {
            for i in 0..d.matrix.num_items() as u32 {
                let (user, item) = (UserId::new(u), ItemId::new(i));
                if d.matrix.get(user, item).is_none() && inc.add_rating(user, item, 3.0).is_ok() {
                    added += 1;
                    if added >= 5 {
                        break 'outer;
                    }
                }
            }
        }
        let stats = inc.refresh().unwrap();
        assert_eq!(stats.kind, RefreshKind::Full);
        assert_eq!(stats.merged, 5);
    }

    #[test]
    fn partial_refresh_matches_full_refit_predictions_closely() {
        // The only partial-refresh approximation is the frozen K-means
        // assignment; after a handful of new ratings the two paths should
        // give nearly identical MAE over a probe set.
        let (d, mut inc) = setup();
        let mut fresh_ratings = Vec::new();
        let mut from = 0;
        for _ in 0..4 {
            let (u, i) = unrated_cell(&d.matrix, from);
            inc.add_rating(u, i, 4.0).unwrap();
            fresh_ratings.push((u, i, 4.0));
            from = u.raw() + 1;
        }
        inc.refresh().unwrap();

        // Full refit on the same merged matrix. Note K-means re-seeds on
        // the merged data, so even two *full* fits across the update can
        // disagree pointwise; the right check is aggregate agreement.
        let full = Cfsf::fit(inc.model().matrix(), CfsfConfig::small()).unwrap();
        let mut abs_diff = 0.0;
        let mut total = 0usize;
        for u in (0..d.matrix.num_users()).step_by(7) {
            for i in (0..d.matrix.num_items()).step_by(11) {
                let a = inc.predict(UserId::from(u), ItemId::from(i));
                let b = full.predict(UserId::from(u), ItemId::from(i));
                match (a, b) {
                    (Some(x), Some(y)) => {
                        abs_diff += (x - y).abs();
                        total += 1;
                    }
                    (None, None) => {}
                    _ => panic!("availability must agree at ({u},{i})"),
                }
            }
        }
        let mean_diff = abs_diff / total as f64;
        assert!(
            mean_diff < 0.15,
            "partial refresh drifted {mean_diff:.3} on average over {total} probes"
        );
    }

    #[test]
    fn refresh_invalidates_cached_neighbor_selections() {
        // Regression: the per-user top-K cache must not survive a refresh,
        // or predictions would keep using neighbor similarities computed
        // against the pre-update matrix.
        let (d, mut inc) = setup();
        let (u, i) = unrated_cell(&d.matrix, 2);

        // Prime the cache for a user whose selection the update can shift.
        let before = inc.model().top_k_users(u);
        assert!(std::sync::Arc::ptr_eq(&before, &inc.model().top_k_users(u)));

        inc.add_rating(u, i, 5.0).unwrap();
        inc.refresh().unwrap();

        let after = inc.model().top_k_users(u);
        assert!(
            !std::sync::Arc::ptr_eq(&before, &after),
            "neighbor cache still serves the pre-refresh selection"
        );
        // The fresh selection must reflect the merged matrix: recomputing
        // after another cache flush gives the same list (i.e. `after` is a
        // genuine post-refresh selection, not a stale survivor).
        inc.model().clear_caches();
        let recomputed = inc.model().top_k_users(u);
        assert_eq!(*after, *recomputed);
    }

    #[test]
    fn refreshed_model_sees_new_evidence_in_predictions() {
        let (d, mut inc) = setup();
        // give user `u` several maximal ratings on items similar to a
        // target; prediction for the target should not decrease.
        let (u, i) = unrated_cell(&d.matrix, 5);
        let before = inc.predict(u, i);
        inc.add_rating(u, i, 5.0).unwrap();
        inc.refresh().unwrap();
        // the cell is now rated; recommendations must exclude it
        let recs = inc.model().recommend_top_n(u, d.matrix.num_items());
        assert!(recs.iter().all(|&(item, _)| item != i));
        let _ = before;
    }
}
