//! Bounded partial selection: the top `k` of a scored stream in `O(n log k)`
//! time and `O(k)` memory, replacing full `sort_by` + `truncate` on the
//! serving path (neighbor selection, top-N recommendation).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry ordered so the **worst** candidate under the serving
/// ranking (descending score, then ascending id) sits at the root of a
/// max-heap and is the first to be displaced.
struct Worst<T>(T, f64);

impl<T: Ord> PartialEq for Worst<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T: Ord> Eq for Worst<T> {}
impl<T: Ord> PartialOrd for Worst<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for Worst<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lower score is worse; on ties, the higher id is worse — exactly
        // the reverse of the output order, so the heap max is the first
        // element `truncate(k)` would have dropped.
        other
            .1
            .total_cmp(&self.1)
            .then_with(|| self.0.cmp(&other.0))
    }
}

/// Selects the top `k` entries of `scored` under (descending score,
/// ascending id) — the exact order the serving path's former
/// `sort_by` + `truncate(k)` produced, deterministically and regardless
/// of input order (ids are assumed unique). Scores must be finite.
///
/// Public because the sharded serving tier's scatter-gather merge must
/// rank with *exactly* this comparator: the global top-`k` of the union
/// of per-stripe top-`k`s is then bit-for-bit the single-process answer.
pub fn top_k_by_score<T, I>(k: usize, scored: I) -> Vec<(T, f64)>
where
    T: Copy + Ord,
    I: IntoIterator<Item = (T, f64)>,
{
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Worst<T>> = BinaryHeap::with_capacity(k + 1);
    for (id, score) in scored {
        if heap.len() < k {
            heap.push(Worst(id, score));
        } else {
            let beats = heap
                .peek()
                .is_some_and(|worst| score > worst.1 || (score == worst.1 && id < worst.0));
            if beats {
                heap.pop();
                heap.push(Worst(id, score));
            }
        }
    }
    let mut out: Vec<(T, f64)> = heap.into_iter().map(|Worst(id, s)| (id, s)).collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn reference(k: usize, mut v: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn matches_sort_truncate_with_ties() {
        let scored = vec![
            (5u32, 0.5),
            (1, 0.9),
            (9, 0.5),
            (2, 0.9),
            (7, 0.1),
            (3, 0.5),
            (0, 0.7),
        ];
        for k in 0..=8 {
            assert_eq!(
                top_k_by_score(k, scored.iter().copied()),
                reference(k, scored.clone()),
                "k={k}"
            );
        }
    }

    #[test]
    fn deterministic_across_input_orders() {
        let mut scored: Vec<(u32, f64)> = (0..200)
            .map(|i| (i, ((i * 37) % 50) as f64 / 10.0))
            .collect();
        let expect = reference(10, scored.clone());
        scored.reverse();
        assert_eq!(top_k_by_score(10, scored.iter().copied()), expect);
        // interleave
        let interleaved: Vec<_> = scored
            .chunks(2)
            .rev()
            .flat_map(|c| c.iter().copied())
            .collect();
        assert_eq!(top_k_by_score(10, interleaved), expect);
    }

    #[test]
    fn short_streams_and_zero_k() {
        assert!(top_k_by_score::<u32, _>(0, vec![(1, 1.0)]).is_empty());
        assert!(top_k_by_score::<u32, _>(5, Vec::new()).is_empty());
        assert_eq!(top_k_by_score(5, vec![(3u32, 2.0)]), vec![(3, 2.0)]);
    }
}
