//! The serving degradation ladder: how a prediction steps down when
//! parts of the online phase produce nothing usable.
//!
//! The paper's fusion (Eq. 14) already renormalizes `λ`/`δ` over
//! whichever of `SUIR'`, `SUR'`, `SIR'` are available; this module names
//! the rungs of that ladder explicitly and extends it below the last
//! estimator so an in-range request *always* produces a finite, on-scale
//! answer:
//!
//! 1. [`DegradeLevel::Full`] — all three estimators fused;
//! 2. [`DegradeLevel::PartialFusion`] — two estimators fused;
//! 3. [`DegradeLevel::SingleEstimator`] — one estimator alone;
//! 4. [`DegradeLevel::ClusterSmoothed`] — the cluster-smoothed cell value
//!    (Eq. 7–8), available whenever smoothing is on;
//! 5. [`DegradeLevel::UserMean`] — the user's mean rating;
//! 6. [`DegradeLevel::GlobalMean`] — the training matrix's global mean,
//!    the rung that cannot be missing.
//!
//! Every prediction reports the rung it was served from
//! ([`crate::PredictionBreakdown::level`]) and bumps the matching
//! `online.degrade.*` counter, so operators can alarm on a fleet quietly
//! sliding down the ladder.

/// The rung of the degradation ladder a prediction was served from.
/// Ordered best-first: `Full < PartialFusion < … < GlobalMean`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradeLevel {
    /// All three Eq. 12 estimators were available and fused.
    Full,
    /// Exactly two estimators were available; `λ`/`δ` renormalized.
    PartialFusion,
    /// A single estimator carried the prediction alone.
    SingleEstimator,
    /// No estimator: served the cluster-smoothed cell value (Eq. 7–8).
    ClusterSmoothed,
    /// No estimator, no smoothed cell: served the user's mean rating.
    UserMean,
    /// Nothing user-specific at all: served the global mean rating.
    GlobalMean,
}

impl DegradeLevel {
    /// The rung for a fused prediction built from `available` estimators
    /// (1–3). Callers handle the zero-estimator rungs themselves.
    pub(crate) fn from_available(available: usize) -> Self {
        match available {
            3 => Self::Full,
            2 => Self::PartialFusion,
            _ => Self::SingleEstimator,
        }
    }

    /// Stable snake_case name, matching the `online.degrade.*` counters.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::PartialFusion => "partial_fusion",
            Self::SingleEstimator => "single_estimator",
            Self::ClusterSmoothed => "cluster_smoothed",
            Self::UserMean => "user_mean",
            Self::GlobalMean => "global_mean",
        }
    }

    /// `true` when the prediction came from below the last estimator —
    /// the ladder's fallback region.
    pub fn is_fallback(self) -> bool {
        matches!(
            self,
            Self::ClusterSmoothed | Self::UserMean | Self::GlobalMean
        )
    }

    /// Stable single-byte code for the wire protocol (`cf-serve` ships
    /// the rung inside prediction frames). Best rung is `0`; codes are
    /// append-only so old routers understand new shards.
    pub fn code(self) -> u8 {
        match self {
            Self::Full => 0,
            Self::PartialFusion => 1,
            Self::SingleEstimator => 2,
            Self::ClusterSmoothed => 3,
            Self::UserMean => 4,
            Self::GlobalMean => 5,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for bytes no rung owns.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Self::Full,
            1 => Self::PartialFusion,
            2 => Self::SingleEstimator,
            3 => Self::ClusterSmoothed,
            4 => Self::UserMean,
            5 => Self::GlobalMean,
            _ => return None,
        })
    }

    /// Bumps this rung's `online.degrade.*` counter. The `counter!` macro
    /// caches its handle per call site, so each rung needs its own
    /// literal-name call — a single dynamic-name site would bind every
    /// rung to whichever fired first. Public because the remote serving
    /// tier (`cf-serve`'s router) steps down the same ladder when a shard
    /// is unreachable, and its fallback answers must land in the same
    /// counters operators already alarm on.
    pub fn record(self) {
        match self {
            Self::Full => cf_obs::counter!("online.degrade.full").inc(),
            Self::PartialFusion => cf_obs::counter!("online.degrade.partial_fusion").inc(),
            Self::SingleEstimator => cf_obs::counter!("online.degrade.single_estimator").inc(),
            Self::ClusterSmoothed => cf_obs::counter!("online.degrade.cluster_smoothed").inc(),
            Self::UserMean => cf_obs::counter!("online.degrade.user_mean").inc(),
            Self::GlobalMean => cf_obs::counter!("online.degrade.global_mean").inc(),
        }
    }
}

impl std::fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_best_first() {
        assert!(DegradeLevel::Full < DegradeLevel::PartialFusion);
        assert!(DegradeLevel::PartialFusion < DegradeLevel::SingleEstimator);
        assert!(DegradeLevel::SingleEstimator < DegradeLevel::ClusterSmoothed);
        assert!(DegradeLevel::ClusterSmoothed < DegradeLevel::UserMean);
        assert!(DegradeLevel::UserMean < DegradeLevel::GlobalMean);
    }

    #[test]
    fn from_available_maps_counts() {
        assert_eq!(DegradeLevel::from_available(3), DegradeLevel::Full);
        assert_eq!(DegradeLevel::from_available(2), DegradeLevel::PartialFusion);
        assert_eq!(
            DegradeLevel::from_available(1),
            DegradeLevel::SingleEstimator
        );
    }

    #[test]
    fn fallback_region_is_the_bottom_three_rungs() {
        assert!(!DegradeLevel::Full.is_fallback());
        assert!(!DegradeLevel::PartialFusion.is_fallback());
        assert!(!DegradeLevel::SingleEstimator.is_fallback());
        assert!(DegradeLevel::ClusterSmoothed.is_fallback());
        assert!(DegradeLevel::UserMean.is_fallback());
        assert!(DegradeLevel::GlobalMean.is_fallback());
    }

    #[test]
    fn names_are_stable_and_displayed() {
        assert_eq!(DegradeLevel::Full.as_str(), "full");
        assert_eq!(DegradeLevel::GlobalMean.to_string(), "global_mean");
    }

    #[test]
    fn wire_codes_round_trip_and_reject_unknown_bytes() {
        for level in [
            DegradeLevel::Full,
            DegradeLevel::PartialFusion,
            DegradeLevel::SingleEstimator,
            DegradeLevel::ClusterSmoothed,
            DegradeLevel::UserMean,
            DegradeLevel::GlobalMean,
        ] {
            assert_eq!(DegradeLevel::from_code(level.code()), Some(level));
        }
        assert_eq!(DegradeLevel::from_code(6), None);
        assert_eq!(DegradeLevel::from_code(255), None);
    }
}
