//! Model persistence: save a fitted [`Cfsf`] to a compact binary stream
//! and load it back without repeating the expensive offline work.
//!
//! What is stored: the configuration, the training matrix, the GIS
//! neighbor lists (the `O(Q·nnz)` part of the offline phase), the
//! K-means assignment (the iterative part), and — since version 3 — the
//! quantized serving planes. What is *recomputed* on load: smoothing,
//! iCluster, and the dense online store — all linear passes that take
//! milliseconds and would dominate the file size if stored
//! (`P×Q` doubles).
//!
//! Format (version 3): little-endian, checksummed sections:
//!
//! ```text
//! magic "CFSF"  | u32 version | u64 generation
//! 5 × section   | u32 tag | u64 len | payload (len bytes) | u32 crc32
//! ```
//!
//! `generation` is the self-healing refresh loop's generation id
//! (`cfsf_core::refresh`); a model fitted offline saves 0. Section
//! payloads, in tag order:
//!
//! ```text
//! config (1)    | clusters, k, m, candidate_factor, kmeans_iterations: u64
//!               | lambda, delta, w, gis.threshold: f64
//!               | gis.max_neighbors: u64 (u64::MAX = none)
//!               | seed: u64 | use_smoothing: u8 | plane_precision: u8
//! matrix (2)    | num_users, num_items, nnz: u64 | scale min,max: f64
//!               | nnz × (user u32, item u32, rating f64)
//! gis (3)       | num_items × [len u64, len × (item u32, sim f64)]
//! clusters (4)  | k, iterations: u64 | converged u8 | P × u32
//! planes (5)    | [`cf_matrix::WeightPlanes::encode`] payload
//! ```
//!
//! The per-section CRC32 turns silent bit rot into a detected fault, and
//! the section boundaries make most of the file *recoverable*: the GIS,
//! cluster, and planes sections are pure derivations of the stored
//! matrix, so [`Cfsf::load_with_recovery`] rebuilds a corrupt one from
//! the (intact) matrix section instead of refusing to load — the same
//! computation [`Cfsf::fit`] runs, so the recovered model predicts
//! identically. Version 2 streams (no generation, no planes section —
//! planes recomputed from the smoothed sheet) and version 1 streams
//! (unchecksummed, same payloads laid end to end) still load.

use std::io::{self, Read, Write};

use cf_cluster::{ClusterAssignment, ICluster, KMeans, KMeansConfig, Smoother};
use cf_matrix::{DenseRatings, ItemId, MatrixBuilder, RatingMatrix, RatingScale, UserId};
use cf_similarity::Gis;

use crate::cache::ShardedCache;
use crate::{Cfsf, CfsfConfig, CfsfError};

const MAGIC: &[u8; 4] = b"CFSF";
const VERSION: u32 = 3;
const V2: u32 = 2;
const V1: u32 = 1;

const TAG_CONFIG: u32 = 1;
const TAG_MATRIX: u32 = 2;
const TAG_GIS: u32 = 3;
const TAG_CLUSTERS: u32 = 4;
const TAG_PLANES: u32 = 5;

/// Errors from loading a persisted model.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a CFSF model, has the wrong version, fails a
    /// section checksum, or is internally inconsistent.
    Format(String),
    /// The stored configuration or matrix failed validation.
    Invalid(CfsfError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Format(m) => write!(f, "malformed model file: {m}"),
            Self::Invalid(e) => write!(f, "invalid model contents: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CfsfError> for PersistError {
    fn from(e: CfsfError) -> Self {
        Self::Invalid(e)
    }
}

/// What [`Cfsf::load_with_recovery`] had to rebuild. All flags `false`
/// means the stream was intact and the load equals a strict [`Cfsf::load`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The GIS section failed its checksum (or parse) and was rebuilt
    /// from the stored matrix.
    pub gis_rebuilt: bool,
    /// The cluster section failed its checksum (or parse) and the
    /// K-means assignment was recomputed from the stored matrix.
    pub clusters_rebuilt: bool,
    /// The quantized weight-plane section failed its checksum (or
    /// parse/validation) and the planes were refolded from the smoothed
    /// sheet — deterministic, so bit-identical to what the file stored.
    pub planes_rebuilt: bool,
    /// The refresh generation id from the stream header (0 for V1/V2
    /// streams and offline-fitted models).
    pub generation: u64,
}

impl RecoveryReport {
    /// `true` when anything had to be rebuilt.
    pub fn any(&self) -> bool {
        self.gis_rebuilt || self.clusters_rebuilt || self.planes_rebuilt
    }
}

// --- crc32 (IEEE, the zlib/PNG polynomial) -----------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 (the zlib/PNG polynomial) over `data`. Public because the
/// persistence sections and the `cf-serve` wire frames checksum with the
/// same function — one implementation, one set of test vectors.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- primitive codecs -------------------------------------------------

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn get_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn get_usize<R: Read>(r: &mut R, what: &str, limit: u64) -> Result<usize, PersistError> {
    let v = get_u64(r)?;
    if v > limit {
        return Err(PersistError::Format(format!(
            "{what} = {v} exceeds sanity limit {limit}"
        )));
    }
    Ok(v as usize)
}

/// Sanity cap on any stored count: a corrupt length field must fail fast
/// rather than trigger a giant allocation.
const LIMIT: u64 = 1 << 32;

// --- section payload encoders ------------------------------------------

/// `with_precision` appends the serving-plane precision as a trailing
/// byte — an append-only payload extension the V2 section framing allows
/// (old readers never saw it; new readers treat its absence as the
/// pre-quantization default). The legacy V1 stream has no framing, so its
/// writer/reader must agree on the exact field list and skip it.
fn encode_config(c: &CfsfConfig, with_precision: bool) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    put_u64(&mut w, c.clusters as u64)?;
    put_u64(&mut w, c.k as u64)?;
    put_u64(&mut w, c.m as u64)?;
    put_u64(&mut w, c.candidate_factor as u64)?;
    put_u64(&mut w, c.kmeans_iterations as u64)?;
    put_f64(&mut w, c.lambda)?;
    put_f64(&mut w, c.delta)?;
    put_f64(&mut w, c.w)?;
    put_f64(&mut w, c.gis.threshold)?;
    put_u64(&mut w, c.gis.max_neighbors.map_or(u64::MAX, |n| n as u64))?;
    put_u64(&mut w, c.seed)?;
    put_u8(&mut w, u8::from(c.use_smoothing))?;
    if with_precision {
        put_u8(&mut w, c.plane_precision.code())?;
    }
    Ok(w)
}

fn encode_matrix(m: &RatingMatrix) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    put_u64(&mut w, m.num_users() as u64)?;
    put_u64(&mut w, m.num_items() as u64)?;
    put_u64(&mut w, m.num_ratings() as u64)?;
    put_f64(&mut w, m.scale().min)?;
    put_f64(&mut w, m.scale().max)?;
    for (u, i, r) in m.triplets() {
        put_u32(&mut w, u.raw())?;
        put_u32(&mut w, i.raw())?;
        put_f64(&mut w, r)?;
    }
    Ok(w)
}

fn encode_gis(gis: &Gis, m: &RatingMatrix) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    for item in m.items() {
        let list = gis.neighbors(item);
        put_u64(&mut w, list.len() as u64)?;
        for &(i, s) in list {
            put_u32(&mut w, i.raw())?;
            put_f64(&mut w, s)?;
        }
    }
    Ok(w)
}

fn encode_clusters(clusters: &ClusterAssignment) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    put_u64(&mut w, clusters.k() as u64)?;
    put_u64(&mut w, clusters.iterations as u64)?;
    put_u8(&mut w, u8::from(clusters.converged))?;
    for &c in clusters.assignment() {
        put_u32(&mut w, c)?;
    }
    Ok(w)
}

// --- section payload decoders ------------------------------------------

/// `with_precision` mirrors [`encode_config`]: when set (V2 sections),
/// an optional trailing precision byte is consumed — EOF there means the
/// payload predates quantized planes (the section checksum already
/// validated the payload, so a short read is a genuine old writer, not
/// truncation) and defaults to [`cf_matrix::PlanePrecision::U16`].
fn decode_config<R: Read>(r: &mut R, with_precision: bool) -> Result<CfsfConfig, PersistError> {
    let clusters = get_usize(r, "clusters", LIMIT)?;
    let k = get_usize(r, "k", LIMIT)?;
    let m_param = get_usize(r, "m", LIMIT)?;
    let candidate_factor = get_usize(r, "candidate_factor", LIMIT)?;
    let kmeans_iterations = get_usize(r, "kmeans_iterations", LIMIT)?;
    let lambda = get_f64(r)?;
    let delta = get_f64(r)?;
    let w_param = get_f64(r)?;
    let gis_threshold = get_f64(r)?;
    let cap_raw = get_u64(r)?;
    let seed = get_u64(r)?;
    let use_smoothing = get_u8(r)? != 0;
    let plane_precision = if with_precision {
        match get_u8(r) {
            Ok(code) => cf_matrix::PlanePrecision::from_code(code).ok_or_else(|| {
                PersistError::Format(format!("unknown plane precision code {code}"))
            })?,
            Err(_) => cf_matrix::PlanePrecision::U16,
        }
    } else {
        cf_matrix::PlanePrecision::U16
    };
    let config = CfsfConfig {
        clusters,
        lambda,
        delta,
        k,
        m: m_param,
        w: w_param,
        candidate_factor,
        gis: cf_similarity::GisConfig {
            threshold: gis_threshold,
            max_neighbors: (cap_raw != u64::MAX).then_some(cap_raw as usize),
            threads: None,
        },
        kmeans_iterations,
        seed,
        threads: None,
        use_smoothing,
        plane_precision,
    };
    config.validate()?;
    Ok(config)
}

fn decode_matrix<R: Read>(r: &mut R) -> Result<RatingMatrix, PersistError> {
    let num_users = get_usize(r, "num_users", LIMIT)?;
    let num_items = get_usize(r, "num_items", LIMIT)?;
    let nnz = get_usize(r, "nnz", LIMIT)?;
    if nnz == 0 {
        return Err(PersistError::Format(
            "matrix section stores no ratings".into(),
        ));
    }
    let scale_min = get_f64(r)?;
    let scale_max = get_f64(r)?;
    if !(scale_min.is_finite() && scale_max.is_finite() && scale_min < scale_max) {
        return Err(PersistError::Format(format!(
            "invalid scale [{scale_min}, {scale_max}]"
        )));
    }
    let mut b = MatrixBuilder::with_dims(num_users, num_items)
        .scale(RatingScale::new(scale_min, scale_max));
    b.reserve(nnz);
    for _ in 0..nnz {
        let u = get_u32(r)?;
        let i = get_u32(r)?;
        let rating = get_f64(r)?;
        b.push(UserId::new(u), ItemId::new(i), rating);
    }
    let matrix = b
        .build()
        .map_err(|e| PersistError::Format(format!("matrix section: {e}")))?;
    if matrix.num_users() != num_users || matrix.num_items() != num_items {
        return Err(PersistError::Format(
            "matrix dimensions disagree with stored triplets".into(),
        ));
    }
    Ok(matrix)
}

fn decode_gis<R: Read>(r: &mut R, num_items: usize) -> Result<Gis, PersistError> {
    let mut lists = Vec::with_capacity(num_items);
    for item in 0..num_items {
        let len = get_usize(r, "gis list length", LIMIT)?;
        let mut list = Vec::with_capacity(len.min(num_items));
        for _ in 0..len {
            let i = get_u32(r)?;
            if i as usize >= num_items {
                return Err(PersistError::Format(format!(
                    "gis list of item {item} references item {i} out of range"
                )));
            }
            let s = get_f64(r)?;
            if !s.is_finite() {
                return Err(PersistError::Format(format!(
                    "non-finite similarity in gis list of item {item}"
                )));
            }
            list.push((ItemId::new(i), s));
        }
        if !list.windows(2).all(|p: &[(ItemId, f64)]| p[0].1 >= p[1].1) {
            return Err(PersistError::Format(format!(
                "gis list of item {item} is not sorted descending"
            )));
        }
        lists.push(list);
    }
    Ok(Gis::from_lists(lists))
}

fn decode_clusters<R: Read>(
    r: &mut R,
    num_users: usize,
) -> Result<ClusterAssignment, PersistError> {
    let stored_k = get_usize(r, "cluster count", LIMIT)?;
    let iterations = get_usize(r, "kmeans iterations run", LIMIT)?;
    let converged = get_u8(r)? != 0;
    let mut assignment = Vec::with_capacity(num_users);
    for ui in 0..num_users {
        let c = get_u32(r)?;
        if c as usize >= stored_k {
            return Err(PersistError::Format(format!(
                "user {ui} assigned to cluster {c} >= {stored_k}"
            )));
        }
        assignment.push(c);
    }
    Ok(ClusterAssignment::from_assignment(
        assignment, stored_k, iterations, converged,
    ))
}

// --- section framing ----------------------------------------------------

fn write_section<W: Write>(w: &mut W, tag: u32, payload: &[u8]) -> io::Result<()> {
    put_u32(w, tag)?;
    put_u64(w, payload.len() as u64)?;
    w.write_all(payload)?;
    put_u32(w, crc32(payload))
}

/// Reads one `tag | len | payload | crc` frame, verifying tag and
/// checksum. The payload is read through `take`, so a corrupt length
/// fails on short read instead of provoking a giant allocation.
fn read_section<R: Read>(r: &mut R, tag: u32, what: &str) -> Result<Vec<u8>, PersistError> {
    let stored_tag = get_u32(r)?;
    if stored_tag != tag {
        return Err(PersistError::Format(format!(
            "expected {what} section (tag {tag}), found tag {stored_tag}"
        )));
    }
    let len = get_u64(r)?;
    if len > LIMIT {
        return Err(PersistError::Format(format!(
            "{what} section length {len} exceeds sanity limit {LIMIT}"
        )));
    }
    let mut payload = Vec::new();
    let n = r.take(len).read_to_end(&mut payload)?;
    if n as u64 != len {
        return Err(PersistError::Format(format!(
            "{what} section truncated: {n} of {len} bytes"
        )));
    }
    let stored_crc = get_u32(r)?;
    let actual = crc32(&payload);
    if stored_crc != actual {
        return Err(PersistError::Format(format!(
            "{what} section checksum mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(payload)
}

/// Decodes a whole section payload, rejecting trailing garbage — a
/// payload that checksums clean but decodes short is still corrupt.
fn decode_section<'p, T>(
    payload: &'p [u8],
    what: &str,
    decode: impl FnOnce(&mut &'p [u8]) -> Result<T, PersistError>,
) -> Result<T, PersistError> {
    let mut r = payload;
    let value = decode(&mut r)?;
    if !r.is_empty() {
        return Err(PersistError::Format(format!(
            "{what} section has {} trailing bytes",
            r.len()
        )));
    }
    Ok(value)
}

// --- rebuilding recoverable sections ------------------------------------

/// The exact GIS [`Cfsf::fit`] would build for this config and matrix.
fn rebuild_gis(config: &CfsfConfig, matrix: &RatingMatrix) -> Gis {
    let mut gis_config = config.gis.clone();
    if let Some(cap) = gis_config.max_neighbors {
        gis_config.max_neighbors = Some(cap.max(config.m));
    }
    Gis::build(matrix, &gis_config)
}

/// The exact K-means assignment [`Cfsf::fit`] would build — seeded, so
/// the recovered assignment matches what the file would have stored.
fn rebuild_clusters(config: &CfsfConfig, matrix: &RatingMatrix) -> ClusterAssignment {
    let kmeans = KMeansConfig {
        k: config.clusters,
        max_iterations: config.kmeans_iterations,
        seed: config.seed,
        ..Default::default()
    };
    KMeans::fit(matrix, &kmeans)
}

// --- model codec -------------------------------------------------------

impl Cfsf {
    /// Serializes the model in the current (checksummed) format with
    /// generation id 0 — the offline-fit default. See the module docs.
    pub fn save<W: Write>(&self, w: W) -> io::Result<()> {
        self.save_with_generation(w, 0)
    }

    /// [`Cfsf::save`] stamping an explicit refresh generation id into the
    /// header, so a snapshot taken from a live [`crate::SelfHealingCfsf`]
    /// records *which* generation it froze.
    pub fn save_with_generation<W: Write>(&self, mut w: W, generation: u64) -> io::Result<()> {
        w.write_all(MAGIC)?;
        put_u32(&mut w, VERSION)?;
        put_u64(&mut w, generation)?;
        write_section(&mut w, TAG_CONFIG, &encode_config(&self.config, true)?)?;
        write_section(&mut w, TAG_MATRIX, &encode_matrix(&self.matrix)?)?;
        write_section(&mut w, TAG_GIS, &encode_gis(&self.gis, &self.matrix)?)?;
        write_section(&mut w, TAG_CLUSTERS, &encode_clusters(&self.clusters)?)?;
        write_section(&mut w, TAG_PLANES, &self.planes.encode())?;
        w.flush()
    }

    /// Saves to a file.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.save(io::BufWriter::new(f))
    }

    /// Writes the legacy unchecksummed version-1 stream — kept only so
    /// the compatibility tests can exercise the V1 load path.
    #[cfg(test)]
    pub(crate) fn save_v1<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        put_u32(&mut w, V1)?;
        w.write_all(&encode_config(&self.config, false)?)?;
        w.write_all(&encode_matrix(&self.matrix)?)?;
        w.write_all(&encode_gis(&self.gis, &self.matrix)?)?;
        w.write_all(&encode_clusters(&self.clusters)?)?;
        w.flush()
    }

    /// Writes the previous checksummed version-2 stream (no generation,
    /// no planes section) — kept only so the compatibility tests can
    /// exercise the V2 load path.
    #[cfg(test)]
    pub(crate) fn save_v2<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        put_u32(&mut w, V2)?;
        write_section(&mut w, TAG_CONFIG, &encode_config(&self.config, true)?)?;
        write_section(&mut w, TAG_MATRIX, &encode_matrix(&self.matrix)?)?;
        write_section(&mut w, TAG_GIS, &encode_gis(&self.gis, &self.matrix)?)?;
        write_section(&mut w, TAG_CLUSTERS, &encode_clusters(&self.clusters)?)?;
        w.flush()
    }

    /// Reassembles a servable model from its persisted structures,
    /// recomputing the cheap linear passes (smoothing, iCluster, dense
    /// store, item strips). When `planes` is `None` (V1/V2 streams, or a
    /// V3 stream whose plane section was rebuilt) the quantized weight
    /// planes are refolded from the smoothed sheet — the same
    /// deterministic computation [`Cfsf::fit`] runs, so the result is
    /// bit-identical to what a V3 writer would have stored.
    fn assemble(
        config: CfsfConfig,
        matrix: RatingMatrix,
        gis: Gis,
        clusters: ClusterAssignment,
        planes: Option<cf_matrix::WeightPlanes>,
    ) -> Self {
        let smoothed = Smoother::smooth(&matrix, &clusters, None);
        let icluster = ICluster::build(&matrix, &smoothed, None);
        let dense = if config.use_smoothing {
            smoothed.dense.clone()
        } else {
            DenseRatings::from_sparse(&matrix)
        };
        let planes = planes.unwrap_or_else(|| {
            cf_matrix::WeightPlanes::from_dense_with(&dense, config.w, config.plane_precision)
        });
        let strips = crate::strips::ItemStrips::build(&gis, config.m);
        let model = Self {
            config,
            matrix,
            gis,
            clusters,
            smoothed,
            icluster,
            dense,
            planes,
            strips,
            neighbor_cache: ShardedCache::new(crate::cache::DEFAULT_CAPACITY),
        };
        model.publish_footprint();
        model
    }

    /// Deserializes a model saved by [`Cfsf::save`] (or a legacy V1/V2
    /// stream), verifying every section checksum. Predictions of the
    /// loaded model are bit-identical to the original's. Any corruption
    /// is an error here; see [`Cfsf::load_with_recovery`] for the
    /// rebuild-what-can-be-rebuilt policy.
    pub fn load<R: Read>(r: R) -> Result<Self, PersistError> {
        load_impl(r, false).map(|(model, _)| model)
    }

    /// [`Cfsf::load`] also returning the refresh generation id stamped in
    /// the stream header (0 for V1/V2 streams and offline-fitted models).
    pub fn load_with_generation<R: Read>(r: R) -> Result<(Self, u64), PersistError> {
        load_impl(r, false).map(|(model, report)| (model, report.generation))
    }

    /// Loads a checksummed stream, rebuilding what a checksum failure
    /// allows: the GIS, cluster, and quantized-plane sections are
    /// derivations of the stored matrix, so when one of them is corrupt
    /// it is recomputed exactly as [`Cfsf::fit`] would (seeded K-means,
    /// deterministic plane folding) instead of failing the load. The
    /// config and matrix sections are ground truth — corruption there is
    /// unrecoverable and errors like [`Cfsf::load`]. Legacy V1 streams
    /// carry no checksums; they load strictly with an empty report.
    pub fn load_with_recovery<R: Read>(r: R) -> Result<(Self, RecoveryReport), PersistError> {
        load_impl(r, true)
    }

    /// Loads from a file.
    pub fn load_from_file(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        let f = std::fs::File::open(path)?;
        Self::load(io::BufReader::new(f))
    }

    /// Loads from a file with the [`Cfsf::load_with_recovery`] policy.
    pub fn load_from_file_with_recovery(
        path: impl AsRef<std::path::Path>,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let f = std::fs::File::open(path)?;
        Self::load_with_recovery(io::BufReader::new(f))
    }
}

/// Checks the magic and returns the stream version plus the generation
/// id (V3 carries it in the header; earlier versions read as 0).
fn read_header<R: Read>(r: &mut R) -> Result<(u32, u64), PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format("bad magic (not a CFSF model)".into()));
    }
    let version = get_u32(r)?;
    match version {
        V1 | V2 => Ok((version, 0)),
        VERSION => Ok((VERSION, get_u64(r)?)),
        _ => Err(PersistError::Format(format!(
            "unsupported version {version} (this build reads {V1}, {V2} and {VERSION})"
        ))),
    }
}

/// The shared decode behind [`Cfsf::load`] and
/// [`Cfsf::load_with_recovery`]: `recover` selects whether a corrupt
/// derivable section (gis / clusters / planes) is rebuilt from the
/// matrix or fails the load.
fn load_impl<R: Read>(mut r: R, recover: bool) -> Result<(Cfsf, RecoveryReport), PersistError> {
    let (version, generation) = read_header(&mut r)?;
    if version == V1 {
        return Ok((load_v1(&mut r)?, RecoveryReport::default()));
    }
    let config = decode_section(
        &read_section(&mut r, TAG_CONFIG, "config")?,
        "config",
        |r| decode_config(r, true),
    )?;
    let matrix = decode_section(
        &read_section(&mut r, TAG_MATRIX, "matrix")?,
        "matrix",
        decode_matrix,
    )?;
    let mut report = RecoveryReport {
        generation,
        ..RecoveryReport::default()
    };
    // A corrupt length field desyncs the stream, so a failed GIS read
    // usually takes the later sections down with it — all of them rebuild.
    let gis = match read_section(&mut r, TAG_GIS, "gis")
        .and_then(|p| decode_section(&p, "gis", |r| decode_gis(r, matrix.num_items())))
    {
        Ok(gis) => gis,
        Err(e) if !recover => return Err(e),
        Err(_) => {
            cf_obs::counter!("persist.recovered.gis").inc();
            report.gis_rebuilt = true;
            rebuild_gis(&config, &matrix)
        }
    };
    let clusters = match read_section(&mut r, TAG_CLUSTERS, "clusters")
        .and_then(|p| decode_section(&p, "clusters", |r| decode_clusters(r, matrix.num_users())))
    {
        Ok(clusters) => clusters,
        Err(e) if !recover => return Err(e),
        Err(_) => {
            cf_obs::counter!("persist.recovered.clusters").inc();
            report.clusters_rebuilt = true;
            rebuild_clusters(&config, &matrix)
        }
    };
    let planes = if version >= VERSION {
        match read_section(&mut r, TAG_PLANES, "planes")
            .and_then(|p| decode_planes(&p, &config, &matrix))
        {
            Ok(planes) => Some(planes),
            Err(e) if !recover => return Err(e),
            Err(_) => {
                cf_obs::counter!("persist.recovered.planes").inc();
                report.planes_rebuilt = true;
                None
            }
        }
    } else {
        // V2 streams never stored planes; recomputing them is the
        // normal load path, not a recovery.
        None
    };
    Ok((
        Cfsf::assemble(config, matrix, gis, clusters, planes),
        report,
    ))
}

/// Decodes and validates a stored planes payload against the config and
/// matrix it claims to serve: dimensions, precision, and the folded ε
/// must all agree (ε is written from the same `f64`, so bit equality is
/// the correct check).
fn decode_planes(
    payload: &[u8],
    config: &CfsfConfig,
    matrix: &RatingMatrix,
) -> Result<cf_matrix::WeightPlanes, PersistError> {
    let planes = cf_matrix::WeightPlanes::decode(payload).map_err(PersistError::Format)?;
    if planes.num_users() != matrix.num_users() || planes.num_items() != matrix.num_items() {
        return Err(PersistError::Format(format!(
            "planes section is {}×{} but the matrix is {}×{}",
            planes.num_users(),
            planes.num_items(),
            matrix.num_users(),
            matrix.num_items()
        )));
    }
    if planes.precision() != config.plane_precision {
        return Err(PersistError::Format(
            "planes section precision disagrees with the stored config".into(),
        ));
    }
    // ε was written from the very same f64 as config.w, so bit equality
    // is the correct (and lint-clean) comparison.
    if planes.epsilon().to_bits() != config.w.to_bits() {
        return Err(PersistError::Format(
            "planes section epsilon disagrees with the stored config".into(),
        ));
    }
    Ok(planes)
}

/// The legacy sequential-stream decode: the same payloads as V2, laid
/// end to end with no framing or checksums.
fn load_v1<R: Read>(r: &mut R) -> Result<Cfsf, PersistError> {
    let config = decode_config(r, false)?;
    let matrix = decode_matrix(r)?;
    let gis = decode_gis(r, matrix.num_items())?;
    let clusters = decode_clusters(r, matrix.num_users())?;
    Ok(Cfsf::assemble(config, matrix, gis, clusters, None))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cf_data::SyntheticConfig;
    use cf_matrix::Predictor;

    fn model() -> Cfsf {
        let d = SyntheticConfig::small().generate();
        Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
    }

    /// Byte range of the `n`-th (0-based) section payload in a V3 stream
    /// (16-byte header: magic, version, generation).
    fn section_payload(buf: &[u8], n: usize) -> std::ops::Range<usize> {
        let mut pos = 16usize;
        for _ in 0..n {
            let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap()) as usize;
            pos += 12 + len + 4;
        }
        let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap()) as usize;
        pos + 12..pos + 12 + len
    }

    fn assert_predictions_match(a: &Cfsf, b: &Cfsf) {
        for u in (0..80usize).step_by(7) {
            for i in (0..120usize).step_by(11) {
                assert_eq!(
                    a.predict(UserId::from(u), ItemId::from(i)),
                    b.predict(UserId::from(u), ItemId::from(i)),
                    "({u},{i})"
                );
            }
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_preserves_predictions_exactly() {
        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        let loaded = Cfsf::load(buf.as_slice()).unwrap();
        assert_predictions_match(&original, &loaded);
        assert_eq!(
            loaded.offline_summary().clusters,
            original.offline_summary().clusters
        );
    }

    #[test]
    fn roundtrip_preserves_config() {
        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        let loaded = Cfsf::load(buf.as_slice()).unwrap();
        let (a, b) = (original.config(), loaded.config());
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.k, b.k);
        assert_eq!(a.m, b.m);
        assert_eq!(a.lambda, b.lambda);
        assert_eq!(a.delta, b.delta);
        assert_eq!(a.w, b.w);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.use_smoothing, b.use_smoothing);
        assert_eq!(a.gis.max_neighbors, b.gis.max_neighbors);
    }

    #[test]
    fn generation_round_trips_through_the_header() {
        let original = model();
        let mut buf = Vec::new();
        original.save_with_generation(&mut buf, 42).unwrap();
        let (loaded, generation) = Cfsf::load_with_generation(buf.as_slice()).unwrap();
        assert_eq!(generation, 42);
        assert_predictions_match(&original, &loaded);
        let (_, report) = Cfsf::load_with_recovery(buf.as_slice()).unwrap();
        assert_eq!(report.generation, 42);
        assert!(!report.any(), "intact stream must need no recovery");

        // Plain save stamps generation 0.
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        let (_, generation) = Cfsf::load_with_generation(buf.as_slice()).unwrap();
        assert_eq!(generation, 0);
    }

    #[test]
    fn plane_precision_round_trips_through_save() {
        let d = SyntheticConfig::small().generate();
        let cfg = CfsfConfig::small().with_plane_precision(cf_matrix::PlanePrecision::U8);
        let original = Cfsf::fit(&d.matrix, cfg).unwrap();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        let loaded = Cfsf::load(buf.as_slice()).unwrap();
        assert_eq!(
            loaded.config().plane_precision,
            cf_matrix::PlanePrecision::U8
        );
        assert_predictions_match(&original, &loaded);
    }

    /// A V2 stream (no generation in the header, no planes section) must
    /// still load, strictly and through recovery, with an empty report.
    #[test]
    fn legacy_v2_streams_still_load() {
        let original = model();
        let mut v2 = Vec::new();
        original.save_v2(&mut v2).unwrap();
        let loaded = Cfsf::load(v2.as_slice()).unwrap();
        assert_predictions_match(&original, &loaded);

        let (recovered, report) = Cfsf::load_with_recovery(v2.as_slice()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert!(
            !report.planes_rebuilt,
            "a V2 stream never stored planes; recomputing them is not a recovery"
        );
        assert_predictions_match(&original, &recovered);
    }

    /// A V2 stream whose config payload predates the trailing precision
    /// byte (written by an older build) must load with the U16 default.
    #[test]
    fn v2_config_without_precision_byte_defaults_to_u16() {
        let original = model();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, V2).unwrap();
        write_section(
            &mut buf,
            TAG_CONFIG,
            &encode_config(&original.config, false).unwrap(),
        )
        .unwrap();
        write_section(
            &mut buf,
            TAG_MATRIX,
            &encode_matrix(&original.matrix).unwrap(),
        )
        .unwrap();
        write_section(
            &mut buf,
            TAG_GIS,
            &encode_gis(&original.gis, &original.matrix).unwrap(),
        )
        .unwrap();
        write_section(
            &mut buf,
            TAG_CLUSTERS,
            &encode_clusters(&original.clusters).unwrap(),
        )
        .unwrap();
        let loaded = Cfsf::load(buf.as_slice()).unwrap();
        assert_eq!(
            loaded.config().plane_precision,
            cf_matrix::PlanePrecision::U16
        );
        assert_predictions_match(&original, &loaded);
    }

    #[test]
    fn unknown_plane_precision_code_is_rejected() {
        let original = model();
        let mut payload = encode_config(&original.config, false).unwrap();
        payload.push(7); // no such precision
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, VERSION).unwrap();
        put_u64(&mut buf, 0).unwrap(); // generation
        write_section(&mut buf, TAG_CONFIG, &payload).unwrap();
        let e = Cfsf::load(buf.as_slice()).unwrap_err();
        assert!(e.to_string().contains("plane precision"), "{e}");
    }

    #[test]
    fn legacy_v1_streams_still_load() {
        let original = model();
        let mut v1 = Vec::new();
        original.save_v1(&mut v1).unwrap();
        let loaded = Cfsf::load(v1.as_slice()).unwrap();
        assert_predictions_match(&original, &loaded);

        // And through the recovery entry point, with an empty report.
        let (recovered, report) = Cfsf::load_with_recovery(v1.as_slice()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert!(!report.any());
        assert_predictions_match(&original, &recovered);
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let e = Cfsf::load(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(e, PersistError::Format(_)), "{e}");

        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        buf[4] = 99; // corrupt the version
        let e = Cfsf::load(buf.as_slice()).unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
    }

    #[test]
    fn rejects_truncated_streams() {
        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        for cut in [8usize, 64, buf.len() / 2, buf.len() - 3] {
            let e = Cfsf::load(&buf[..cut]).unwrap_err();
            assert!(matches!(e, PersistError::Io(_) | PersistError::Format(_)));
        }
    }

    #[test]
    fn checksums_catch_single_bit_flips_in_every_section() {
        let original = model();
        let mut clean = Vec::new();
        original.save(&mut clean).unwrap();
        // One offset inside each of the five section payloads.
        for n in 0..5 {
            let payload = section_payload(&clean, n);
            let off = payload.start + payload.len() / 2;
            let mut buf = clean.clone();
            buf[off] ^= 0x01;
            let e = Cfsf::load(buf.as_slice()).unwrap_err();
            assert!(
                matches!(e, PersistError::Format(_) | PersistError::Io(_)),
                "flip at {off} (section {n}): {e}"
            );
        }
    }

    #[test]
    fn recovery_rebuilds_a_corrupt_gis_section() {
        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        let gis = section_payload(&buf, 2);
        buf[gis.start + 9] ^= 0xFF;

        // Strict load refuses...
        let e = Cfsf::load(buf.as_slice()).unwrap_err();
        assert!(e.to_string().contains("gis"), "{e}");
        // ...recovery rebuilds and predicts identically to the original.
        let (recovered, report) = Cfsf::load_with_recovery(buf.as_slice()).unwrap();
        assert!(report.gis_rebuilt);
        assert!(!report.clusters_rebuilt && !report.planes_rebuilt);
        assert!(report.any());
        assert_predictions_match(&original, &recovered);
    }

    #[test]
    fn recovery_rebuilds_a_corrupt_cluster_section() {
        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        // Flip one of the assignment u32s at the section's tail.
        let clusters = section_payload(&buf, 3);
        buf[clusters.end - 2] ^= 0xFF;

        let e = Cfsf::load(buf.as_slice()).unwrap_err();
        assert!(matches!(e, PersistError::Format(_)), "{e}");
        let (recovered, report) = Cfsf::load_with_recovery(buf.as_slice()).unwrap();
        assert!(report.clusters_rebuilt);
        assert!(!report.gis_rebuilt && !report.planes_rebuilt);
        assert_predictions_match(&original, &recovered);
    }

    #[test]
    fn recovery_rebuilds_a_corrupt_planes_section() {
        let original = model();
        let mut buf = Vec::new();
        original.save_with_generation(&mut buf, 7).unwrap();
        let planes = section_payload(&buf, 4);
        buf[planes.start + planes.len() / 3] ^= 0xFF;

        // Strict load refuses...
        let e = Cfsf::load(buf.as_slice()).unwrap_err();
        assert!(e.to_string().contains("planes"), "{e}");
        // ...recovery refolds the planes from the smoothed sheet —
        // deterministic, so predictions are bit-identical — and keeps the
        // header generation.
        let (recovered, report) = Cfsf::load_with_recovery(buf.as_slice()).unwrap();
        assert!(report.planes_rebuilt);
        assert!(!report.gis_rebuilt && !report.clusters_rebuilt);
        assert_eq!(report.generation, 7);
        assert!(report.any());
        assert_predictions_match(&original, &recovered);
    }

    #[test]
    fn recovery_refuses_corrupt_config_or_matrix() {
        let original = model();
        let mut clean = Vec::new();
        original.save(&mut clean).unwrap();
        for n in 0..2 {
            let payload = section_payload(&clean, n);
            let off = payload.start + payload.len() / 2;
            let mut buf = clean.clone();
            buf[off] ^= 0x10;
            assert!(
                Cfsf::load_with_recovery(buf.as_slice()).is_err(),
                "flip at {off} (section {n}) must be unrecoverable"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cfsf_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cfsf");
        let original = model();
        original.save_to_file(&path).unwrap();
        let loaded = Cfsf::load_from_file(&path).unwrap();
        let (recovered, report) = Cfsf::load_from_file_with_recovery(&path).unwrap();
        assert!(!report.any());
        assert_eq!(
            original.predict(UserId::new(1), ItemId::new(2)),
            loaded.predict(UserId::new(1), ItemId::new(2))
        );
        assert_eq!(
            original.predict(UserId::new(1), ItemId::new(2)),
            recovered.predict(UserId::new(1), ItemId::new(2))
        );
        std::fs::remove_file(&path).ok();
    }
}
