//! Model persistence: save a fitted [`Cfsf`] to a compact binary stream
//! and load it back without repeating the expensive offline work.
//!
//! What is stored: the configuration, the training matrix, the GIS
//! neighbor lists (the `O(Q·nnz)` part of the offline phase), and the
//! K-means assignment (the iterative part). What is *recomputed* on
//! load: smoothing, iCluster, and the dense online store — all linear
//! passes that take milliseconds and would dominate the file size if
//! stored (`P×Q` doubles).
//!
//! Format: little-endian, sectioned, versioned:
//!
//! ```text
//! magic "CFSF"  | u32 version
//! config        | clusters, k, m, candidate_factor, kmeans_iterations: u64
//!               | lambda, delta, w, gis.threshold: f64
//!               | gis.max_neighbors: u64 (u64::MAX = none)
//!               | seed: u64 | use_smoothing: u8
//! matrix        | num_users, num_items, nnz: u64 | scale min,max: f64
//!               | nnz × (user u32, item u32, rating f64)
//! gis           | num_items × [len u64, len × (item u32, sim f64)]
//! clusters      | k, iterations: u64 | converged u8 | P × u32
//! ```

use std::io::{self, Read, Write};

use cf_cluster::{ClusterAssignment, ICluster, Smoother};
use cf_matrix::{DenseRatings, ItemId, MatrixBuilder, RatingScale, UserId, WeightPlanes};
use cf_similarity::Gis;

use crate::cache::ShardedCache;
use crate::{Cfsf, CfsfConfig, CfsfError};

const MAGIC: &[u8; 4] = b"CFSF";
const VERSION: u32 = 1;

/// Errors from loading a persisted model.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a CFSF model, has the wrong version, or is
    /// internally inconsistent.
    Format(String),
    /// The stored configuration or matrix failed validation.
    Invalid(CfsfError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Format(m) => write!(f, "malformed model file: {m}"),
            Self::Invalid(e) => write!(f, "invalid model contents: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CfsfError> for PersistError {
    fn from(e: CfsfError) -> Self {
        Self::Invalid(e)
    }
}

// --- primitive codecs -------------------------------------------------

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn get_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn get_usize<R: Read>(r: &mut R, what: &str, limit: u64) -> Result<usize, PersistError> {
    let v = get_u64(r)?;
    if v > limit {
        return Err(PersistError::Format(format!(
            "{what} = {v} exceeds sanity limit {limit}"
        )));
    }
    Ok(v as usize)
}

/// Sanity cap on any stored count: a corrupt length field must fail fast
/// rather than trigger a giant allocation.
const LIMIT: u64 = 1 << 32;

// --- model codec -------------------------------------------------------

impl Cfsf {
    /// Serializes the model. See the module docs for the format.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        put_u32(&mut w, VERSION)?;

        // config
        let c = &self.config;
        put_u64(&mut w, c.clusters as u64)?;
        put_u64(&mut w, c.k as u64)?;
        put_u64(&mut w, c.m as u64)?;
        put_u64(&mut w, c.candidate_factor as u64)?;
        put_u64(&mut w, c.kmeans_iterations as u64)?;
        put_f64(&mut w, c.lambda)?;
        put_f64(&mut w, c.delta)?;
        put_f64(&mut w, c.w)?;
        put_f64(&mut w, c.gis.threshold)?;
        put_u64(&mut w, c.gis.max_neighbors.map_or(u64::MAX, |n| n as u64))?;
        put_u64(&mut w, c.seed)?;
        put_u8(&mut w, u8::from(c.use_smoothing))?;

        // matrix
        let m = &self.matrix;
        put_u64(&mut w, m.num_users() as u64)?;
        put_u64(&mut w, m.num_items() as u64)?;
        put_u64(&mut w, m.num_ratings() as u64)?;
        put_f64(&mut w, m.scale().min)?;
        put_f64(&mut w, m.scale().max)?;
        for (u, i, r) in m.triplets() {
            put_u32(&mut w, u.raw())?;
            put_u32(&mut w, i.raw())?;
            put_f64(&mut w, r)?;
        }

        // gis
        for item in m.items() {
            let list = self.gis.neighbors(item);
            put_u64(&mut w, list.len() as u64)?;
            for &(i, s) in list {
                put_u32(&mut w, i.raw())?;
                put_f64(&mut w, s)?;
            }
        }

        // clusters
        put_u64(&mut w, self.clusters.k() as u64)?;
        put_u64(&mut w, self.clusters.iterations as u64)?;
        put_u8(&mut w, u8::from(self.clusters.converged))?;
        for &c in self.clusters.assignment() {
            put_u32(&mut w, c)?;
        }
        w.flush()
    }

    /// Saves to a file.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.save(io::BufWriter::new(f))
    }

    /// Deserializes a model saved by [`Cfsf::save`], recomputing the
    /// smoothing/iCluster/dense structures. Predictions of the loaded
    /// model are bit-identical to the original's.
    pub fn load<R: Read>(mut r: R) -> Result<Self, PersistError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::Format("bad magic (not a CFSF model)".into()));
        }
        let version = get_u32(&mut r)?;
        if version != VERSION {
            return Err(PersistError::Format(format!(
                "unsupported version {version} (this build reads {VERSION})"
            )));
        }

        // config
        let clusters = get_usize(&mut r, "clusters", LIMIT)?;
        let k = get_usize(&mut r, "k", LIMIT)?;
        let m_param = get_usize(&mut r, "m", LIMIT)?;
        let candidate_factor = get_usize(&mut r, "candidate_factor", LIMIT)?;
        let kmeans_iterations = get_usize(&mut r, "kmeans_iterations", LIMIT)?;
        let lambda = get_f64(&mut r)?;
        let delta = get_f64(&mut r)?;
        let w_param = get_f64(&mut r)?;
        let gis_threshold = get_f64(&mut r)?;
        let cap_raw = get_u64(&mut r)?;
        let seed = get_u64(&mut r)?;
        let use_smoothing = get_u8(&mut r)? != 0;
        let config = CfsfConfig {
            clusters,
            lambda,
            delta,
            k,
            m: m_param,
            w: w_param,
            candidate_factor,
            gis: cf_similarity::GisConfig {
                threshold: gis_threshold,
                max_neighbors: (cap_raw != u64::MAX).then_some(cap_raw as usize),
                threads: None,
            },
            kmeans_iterations,
            seed,
            threads: None,
            use_smoothing,
        };
        config.validate()?;

        // matrix
        let num_users = get_usize(&mut r, "num_users", LIMIT)?;
        let num_items = get_usize(&mut r, "num_items", LIMIT)?;
        let nnz = get_usize(&mut r, "nnz", LIMIT)?;
        let scale_min = get_f64(&mut r)?;
        let scale_max = get_f64(&mut r)?;
        if !(scale_min.is_finite() && scale_max.is_finite() && scale_min < scale_max) {
            return Err(PersistError::Format(format!(
                "invalid scale [{scale_min}, {scale_max}]"
            )));
        }
        let mut b = MatrixBuilder::with_dims(num_users, num_items)
            .scale(RatingScale::new(scale_min, scale_max));
        b.reserve(nnz);
        for _ in 0..nnz {
            let u = get_u32(&mut r)?;
            let i = get_u32(&mut r)?;
            let rating = get_f64(&mut r)?;
            b.push(UserId::new(u), ItemId::new(i), rating);
        }
        let matrix = b
            .build()
            .map_err(|e| PersistError::Format(format!("matrix section: {e}")))?;
        if matrix.num_users() != num_users || matrix.num_items() != num_items {
            return Err(PersistError::Format(
                "matrix dimensions disagree with stored triplets".into(),
            ));
        }

        // gis
        let mut lists = Vec::with_capacity(num_items);
        for item in 0..num_items {
            let len = get_usize(&mut r, "gis list length", LIMIT)?;
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                let i = get_u32(&mut r)?;
                if i as usize >= num_items {
                    return Err(PersistError::Format(format!(
                        "gis list of item {item} references item {i} out of range"
                    )));
                }
                let s = get_f64(&mut r)?;
                if !s.is_finite() {
                    return Err(PersistError::Format(format!(
                        "non-finite similarity in gis list of item {item}"
                    )));
                }
                list.push((ItemId::new(i), s));
            }
            if !list.windows(2).all(|p: &[(ItemId, f64)]| p[0].1 >= p[1].1) {
                return Err(PersistError::Format(format!(
                    "gis list of item {item} is not sorted descending"
                )));
            }
            lists.push(list);
        }
        let gis = Gis::from_lists(lists);

        // clusters
        let stored_k = get_usize(&mut r, "cluster count", LIMIT)?;
        let iterations = get_usize(&mut r, "kmeans iterations run", LIMIT)?;
        let converged = get_u8(&mut r)? != 0;
        let mut assignment = Vec::with_capacity(num_users);
        for ui in 0..num_users {
            let c = get_u32(&mut r)?;
            if c as usize >= stored_k {
                return Err(PersistError::Format(format!(
                    "user {ui} assigned to cluster {c} >= {stored_k}"
                )));
            }
            assignment.push(c);
        }
        let clusters =
            ClusterAssignment::from_assignment(assignment, stored_k, iterations, converged);

        // Recompute the cheap linear passes.
        let smoothed = Smoother::smooth(&matrix, &clusters, None);
        let icluster = ICluster::build(&matrix, &smoothed, None);
        let dense = if config.use_smoothing {
            smoothed.dense.clone()
        } else {
            DenseRatings::from_sparse(&matrix)
        };
        let planes = WeightPlanes::from_dense(&dense, config.w);
        let strips = crate::strips::ItemStrips::build(&gis, config.m);

        Ok(Self {
            config,
            matrix,
            gis,
            clusters,
            smoothed,
            icluster,
            dense,
            planes,
            strips,
            neighbor_cache: ShardedCache::new(crate::cache::DEFAULT_CAPACITY),
        })
    }

    /// Loads from a file.
    pub fn load_from_file(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        let f = std::fs::File::open(path)?;
        Self::load(io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::SyntheticConfig;
    use cf_matrix::Predictor;

    fn model() -> Cfsf {
        let d = SyntheticConfig::small().generate();
        Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_predictions_exactly() {
        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        let loaded = Cfsf::load(buf.as_slice()).unwrap();
        for u in (0..80usize).step_by(7) {
            for i in (0..120usize).step_by(11) {
                assert_eq!(
                    original.predict(UserId::from(u), ItemId::from(i)),
                    loaded.predict(UserId::from(u), ItemId::from(i)),
                    "({u},{i})"
                );
            }
        }
        assert_eq!(
            loaded.offline_summary().clusters,
            original.offline_summary().clusters
        );
    }

    #[test]
    fn roundtrip_preserves_config() {
        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        let loaded = Cfsf::load(buf.as_slice()).unwrap();
        let (a, b) = (original.config(), loaded.config());
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.k, b.k);
        assert_eq!(a.m, b.m);
        assert_eq!(a.lambda, b.lambda);
        assert_eq!(a.delta, b.delta);
        assert_eq!(a.w, b.w);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.use_smoothing, b.use_smoothing);
        assert_eq!(a.gis.max_neighbors, b.gis.max_neighbors);
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let e = Cfsf::load(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(e, PersistError::Format(_)), "{e}");

        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        buf[4] = 99; // corrupt the version
        let e = Cfsf::load(buf.as_slice()).unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
    }

    #[test]
    fn rejects_truncated_streams() {
        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        for cut in [8usize, 64, buf.len() / 2, buf.len() - 3] {
            let e = Cfsf::load(&buf[..cut]).unwrap_err();
            assert!(matches!(e, PersistError::Io(_) | PersistError::Format(_)));
        }
    }

    #[test]
    fn rejects_corrupt_cluster_ids() {
        let original = model();
        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        // cluster assignment u32s are the last 80×4 bytes
        let off = buf.len() - 2;
        buf[off] = 0xFF;
        let e = Cfsf::load(buf.as_slice()).unwrap_err();
        assert!(matches!(e, PersistError::Format(_)), "{e}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cfsf_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cfsf");
        let original = model();
        original.save_to_file(&path).unwrap();
        let loaded = Cfsf::load_from_file(&path).unwrap();
        assert_eq!(
            original.predict(UserId::new(1), ItemId::new(2)),
            loaded.predict(UserId::new(1), ItemId::new(2))
        );
        std::fs::remove_file(&path).ok();
    }
}
