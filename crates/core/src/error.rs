//! CFSF error type.

use std::fmt;

/// Errors from fitting a CFSF model.
#[derive(Debug, Clone, PartialEq)]
pub enum CfsfError {
    /// A hyper-parameter was outside its legal range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// What was wrong.
        message: String,
    },
    /// The training matrix has no ratings.
    EmptyTrainingMatrix,
    /// An incremental refresh failed before committing; the model still
    /// serves its pre-refresh state and the pending ratings are intact.
    RefreshFailed {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CfsfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            Self::EmptyTrainingMatrix => write!(f, "training matrix has no ratings"),
            Self::RefreshFailed { message } => {
                write!(
                    f,
                    "incremental refresh aborted (model unchanged): {message}"
                )
            }
        }
    }
}

impl std::error::Error for CfsfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let e = CfsfError::InvalidParameter {
            name: "lambda",
            message: "2 is outside [0, 1]".into(),
        };
        assert!(e.to_string().contains("lambda"));
        assert!(CfsfError::EmptyTrainingMatrix
            .to_string()
            .contains("no ratings"));
    }

    #[test]
    fn refresh_failure_promises_an_unchanged_model() {
        let e = CfsfError::RefreshFailed {
            message: "injected".into(),
        };
        assert!(e.to_string().contains("model unchanged"), "{e}");
        assert!(e.to_string().contains("injected"), "{e}");
    }
}
