//! Parallel batch prediction — the paper's future-work item "how CFSF can
//! improve its scalability in a parallel manner" (§VI).
//!
//! The online phase is read-only over the fitted model (the per-user
//! neighbor cache is behind a lock), so a batch of requests parallelizes
//! trivially: shard requests across threads, warm each user's neighbor
//! selection once, share everything else.
//!
//! Requests are processed in **strip-sorted order**: sorted by
//! `(item, user)` so consecutive requests reuse the same per-item GIS
//! strip (and nearby plane rows) while they are still hot in cache —
//! the serving path is LLC-latency-bound (DESIGN.md §6c), so request
//! locality is throughput. The sort permutation is inverted before
//! returning, and prediction is a pure function of `(user, item)`, so
//! results are bit-identical regardless of request order — enforced by
//! the batch-equivalence tests and proptests.

use cf_matrix::{ItemId, Predictor, UserId};

use crate::online::PredictionBreakdown;
use crate::Cfsf;

impl Cfsf {
    /// Predicts a batch of `(user, item)` requests in parallel.
    ///
    /// Output order matches input order and every element equals what
    /// [`Cfsf::predict`] would return for that pair — parallelism and the
    /// internal strip-sorted processing order are implementation details,
    /// not semantic ones.
    ///
    /// For throughput, requests are grouped so each user's top-`K`
    /// selection is computed once even when the cache starts cold, and
    /// processed sorted by item strip for cache locality.
    pub fn predict_batch(
        &self,
        requests: &[(UserId, ItemId)],
        threads: Option<usize>,
    ) -> Vec<Option<f64>> {
        self.batch_over(requests, threads, |u, i| self.predict(u, i))
    }

    /// [`Cfsf::predict_batch`] returning the full per-request
    /// [`PredictionBreakdown`] — what the shard server's batch frame
    /// serves. Same ordering and isolation guarantees.
    pub fn predict_batch_with_breakdown(
        &self,
        requests: &[(UserId, ItemId)],
        threads: Option<usize>,
    ) -> Vec<Option<PredictionBreakdown>> {
        self.batch_over(requests, threads, |u, i| self.predict_with_breakdown(u, i))
    }

    /// Shared batch engine: warm distinct users, process in strip-sorted
    /// order, scatter results back to request order.
    fn batch_over<T: Send>(
        &self,
        requests: &[(UserId, ItemId)],
        threads: Option<usize>,
        predict_one: impl Fn(UserId, ItemId) -> Option<T> + Sync,
    ) -> Vec<Option<T>> {
        cf_obs::time_scope!("online.batch.batch_ns");
        cf_obs::counter!("online.batch.requests").add(requests.len() as u64);
        let threads = cf_parallel::effective_threads(threads);
        // Pre-warm neighbor selections in parallel over *distinct* users,
        // so the per-request loop below never contends on selection work.
        let mut users: Vec<UserId> = requests.iter().map(|&(u, _)| u).collect();
        users.sort_unstable();
        users.dedup();
        users.retain(|u| u.index() < self.matrix.num_users());
        // Warming is best-effort: a panicking selection only costs the
        // warm-up (the per-request path retries, degraded if need be).
        cf_parallel::par_map_isolated(users.len(), threads, |k| {
            self.top_k_users(users[k]);
        });

        // Strip-sorted processing order: same item → same GIS strip, and
        // within an item ascending users. `par_map_isolated` hands out
        // contiguous chunks, so sorted neighbors land on the same thread
        // and the strip stays hot across them. The original index is the
        // final sort key, making the order a deterministic permutation.
        let mut order: Vec<u32> = (0..requests.len() as u32).collect();
        order.sort_unstable_by_key(|&k| {
            let (u, i) = requests[k as usize];
            (i.raw(), u.raw(), k)
        });

        let sorted = cf_parallel::par_map_isolated(requests.len(), threads, |k| {
            #[cfg(feature = "faultinject")]
            cf_faultinject::maybe_panic("batch.worker_panic");
            let (u, i) = requests[order[k] as usize];
            predict_one(u, i)
        });
        // Scatter back to request order. A worker that panicked (outer
        // None) answers that one request with "no prediction" instead of
        // taking down the whole batch.
        let mut out: Vec<Option<T>> = Vec::with_capacity(requests.len());
        out.resize_with(requests.len(), || None);
        for (k, r) in sorted.into_iter().enumerate() {
            out[order[k] as usize] = match r {
                Some(p) => p,
                None => {
                    cf_obs::counter!("online.batch.request_panic").inc();
                    None
                }
            };
        }
        out
    }

    /// Scores every unrated item for `user` in parallel and returns the
    /// best `n`, like [`Cfsf::recommend_top_n`] but sharded across
    /// threads — the serving-path version for interactive latency on
    /// large catalogs.
    pub fn recommend_top_n_parallel(
        &self,
        user: UserId,
        n: usize,
        threads: Option<usize>,
    ) -> Vec<(ItemId, f64)> {
        let threads = cf_parallel::effective_threads(threads);
        // Warm the user's selection once, outside the parallel region.
        self.top_k_users(user);
        let q = self.matrix.num_items();
        let scored: Vec<Option<Option<(ItemId, f64)>>> =
            cf_parallel::par_map_isolated(q, threads, |i| {
                #[cfg(feature = "faultinject")]
                cf_faultinject::maybe_panic("recommend.item_panic");
                let item = ItemId::from(i);
                if self.matrix.is_rated(user, item) {
                    return None;
                }
                self.predict(user, item).map(|r| (item, r))
            });
        // A panicking item scorer (outer None) drops that one candidate
        // from the ranking; the rest of the catalog still competes.
        let survivors = scored.into_iter().filter_map(|r| match r {
            Some(s) => s,
            None => {
                cf_obs::counter!("online.recommend.item_panic").inc();
                None
            }
        });
        crate::topk::top_k_by_score(n, survivors)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::CfsfConfig;
    use cf_data::SyntheticConfig;

    fn model() -> Cfsf {
        let d = SyntheticConfig::small().generate();
        Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
    }

    fn requests() -> Vec<(UserId, ItemId)> {
        (0..300)
            .map(|k| (UserId::new(k % 80), ItemId::new((k * 7) % 120)))
            .collect()
    }

    #[test]
    fn batch_matches_serial_exactly() {
        let m = model();
        let reqs = requests();
        let serial: Vec<Option<f64>> = reqs.iter().map(|&(u, i)| m.predict(u, i)).collect();
        for threads in [1, 2, 8] {
            m.clear_caches();
            let batch = m.predict_batch(&reqs, Some(threads));
            assert_eq!(batch, serial, "threads={threads}");
        }
    }

    #[test]
    fn batch_handles_out_of_range_requests() {
        let m = model();
        let reqs = vec![
            (UserId::new(0), ItemId::new(0)),
            (UserId::new(9999), ItemId::new(0)),
            (UserId::new(0), ItemId::new(9999)),
        ];
        let out = m.predict_batch(&reqs, Some(2));
        assert!(out[0].is_some());
        assert_eq!(out[1], None);
        assert_eq!(out[2], None);
    }

    #[test]
    fn parallel_recommendations_match_serial() {
        let m = model();
        for u in [0u32, 13, 55] {
            let user = UserId::new(u);
            let serial = m.recommend_top_n(user, 8);
            let parallel = m.recommend_top_n_parallel(user, 8, Some(4));
            assert_eq!(serial, parallel, "user {u}");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let m = model();
        assert!(m.predict_batch(&[], Some(4)).is_empty());
    }

    /// The strip sort is internal: any permutation of the same requests
    /// must produce the permuted-but-bit-identical answers, at every
    /// thread count.
    #[test]
    fn batch_results_are_bit_identical_regardless_of_request_order() {
        let m = model();
        let reqs = requests();
        // A fixed pseudo-random shuffle (Fibonacci hashing permutation on
        // a power-of-two overscan, filtered to range).
        let n = reqs.len();
        let shuffled: Vec<(UserId, ItemId)> = (0..1024usize)
            .map(|k| (k.wrapping_mul(2654435761) >> 6) % 512)
            .filter(|&k| k < n)
            .map(|k| reqs[k])
            .collect();
        assert!(shuffled.len() >= n / 2, "permutation sanity");
        let base: Vec<Option<f64>> = shuffled.iter().map(|&(u, i)| m.predict(u, i)).collect();
        for threads in [1, 2, 8] {
            m.clear_caches();
            let batch = m.predict_batch(&shuffled, Some(threads));
            assert_eq!(batch.len(), base.len());
            for (k, (a, b)) in batch.iter().zip(&base).enumerate() {
                assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "threads={threads}, k={k}"
                );
            }
        }
    }

    #[test]
    fn breakdown_batch_matches_serial_breakdowns() {
        let m = model();
        let reqs = requests();
        let serial: Vec<_> = reqs
            .iter()
            .map(|&(u, i)| m.predict_with_breakdown(u, i))
            .collect();
        for threads in [1, 4] {
            m.clear_caches();
            let batch = m.predict_batch_with_breakdown(&reqs, Some(threads));
            assert_eq!(batch, serial, "threads={threads}");
        }
    }
}
