//! The fusion function £ of Eq. 14.
//!
//! `SR' = (1-δ)(1-λ)·SIR' + (1-δ)λ·SUR' + δ·SUIR'`
//!
//! On sparse data any of the three estimators can be unavailable (no
//! similar item the user rated, no like-minded user who rated the item).
//! The paper does not spell out that case; this implementation
//! renormalizes the weights of the available estimators so the prediction
//! remains a convex combination — equivalent to conditioning Eq. 14 on
//! the evidence that exists.

/// The three Eq. 14 weights for a given `(λ, δ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionWeights {
    /// Weight of `SIR'`: `(1-δ)(1-λ)`.
    pub sir: f64,
    /// Weight of `SUR'`: `(1-δ)λ`.
    pub sur: f64,
    /// Weight of `SUIR'`: `δ`.
    pub suir: f64,
}

impl FusionWeights {
    /// Computes the weights from `λ` and `δ`.
    pub fn new(lambda: f64, delta: f64) -> Self {
        Self {
            sir: (1.0 - delta) * (1.0 - lambda),
            sur: (1.0 - delta) * lambda,
            suir: delta,
        }
    }
}

/// Fuses the available estimators per Eq. 14, renormalizing over the ones
/// that are present. Returns `None` when no estimator produced a value.
pub fn fuse(
    sir: Option<f64>,
    sur: Option<f64>,
    suir: Option<f64>,
    lambda: f64,
    delta: f64,
) -> Option<f64> {
    let w = FusionWeights::new(lambda, delta);
    let mut num = 0.0;
    let mut den = 0.0;
    for (value, weight) in [(sir, w.sir), (sur, w.sur), (suir, w.suir)] {
        if let Some(v) = value {
            num += weight * v;
            den += weight;
        }
    }
    if den > f64::EPSILON {
        Some(num / den)
    } else {
        None
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        for &(l, d) in &[(0.8, 0.1), (0.0, 0.0), (1.0, 1.0), (0.3, 0.7)] {
            let w = FusionWeights::new(l, d);
            assert!((w.sir + w.sur + w.suir - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_defaults_weight_sur_highest() {
        let w = FusionWeights::new(0.8, 0.1);
        assert!((w.sur - 0.72).abs() < 1e-12);
        assert!((w.sir - 0.18).abs() < 1e-12);
        assert!((w.suir - 0.1).abs() < 1e-12);
        assert!(w.sur > w.sir && w.sir > w.suir);
    }

    #[test]
    fn full_fusion_matches_equation_fourteen() {
        let r = fuse(Some(2.0), Some(4.0), Some(3.0), 0.8, 0.1).unwrap();
        let expect = 0.18 * 2.0 + 0.72 * 4.0 + 0.1 * 3.0;
        assert!((r - expect).abs() < 1e-12);
    }

    #[test]
    fn lambda_extremes_select_components() {
        // λ=1, δ=0: pure SUR'
        assert_eq!(fuse(Some(1.0), Some(5.0), None, 1.0, 0.0), Some(5.0));
        // λ=0, δ=0: pure SIR'
        assert_eq!(fuse(Some(1.0), Some(5.0), None, 0.0, 0.0), Some(1.0));
        // δ=1: pure SUIR'
        assert_eq!(fuse(Some(1.0), Some(5.0), Some(2.5), 0.8, 1.0), Some(2.5));
    }

    #[test]
    fn missing_components_renormalize() {
        // Only SUR' present: its weight cancels out.
        assert_eq!(fuse(None, Some(4.2), None, 0.8, 0.1), Some(4.2));
        // SIR' and SUIR' present: 0.18 and 0.1 renormalize.
        let r = fuse(Some(2.0), None, Some(4.0), 0.8, 0.1).unwrap();
        let expect = (0.18 * 2.0 + 0.1 * 4.0) / 0.28;
        assert!((r - expect).abs() < 1e-12);
    }

    #[test]
    fn all_missing_yields_none() {
        assert_eq!(fuse(None, None, None, 0.8, 0.1), None);
    }

    #[test]
    fn zero_weight_component_present_but_alone_yields_none() {
        // λ=1 zeroes SIR's weight; if SIR is the only evidence the fused
        // denominator is 0 and we must abstain rather than divide by 0.
        assert_eq!(fuse(Some(3.0), None, None, 1.0, 0.0), None);
    }

    #[test]
    fn fusion_is_convex() {
        // result always lies within [min, max] of the present components
        let cases = [
            (Some(1.0), Some(5.0), Some(3.0)),
            (Some(2.0), None, Some(4.5)),
            (None, Some(3.3), None),
        ];
        for (a, b, c) in cases {
            let r = fuse(a, b, c, 0.8, 0.1).unwrap();
            let present: Vec<f64> = [a, b, c].iter().flatten().copied().collect();
            let lo = present.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = present.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(r >= lo - 1e-12 && r <= hi + 1e-12);
        }
    }
}
