//! CFSF hyper-parameters.

use cf_matrix::PlanePrecision;
use cf_similarity::GisConfig;

use crate::CfsfError;

/// All CFSF hyper-parameters. [`CfsfConfig::paper`] reproduces the values
/// the paper uses for MovieLens (§V-C.1): `C=30, λ=0.8, δ=0.1, K=25,
/// M=95, w=0.35`.
#[derive(Debug, Clone)]
pub struct CfsfConfig {
    /// Number of user clusters `C`.
    pub clusters: usize,
    /// Fusion weight between `SIR'` and `SUR'` (Eq. 14): `λ=0` ignores
    /// `SUR'`, `λ=1` ignores `SIR'`.
    pub lambda: f64,
    /// Fusion weight of `SUIR'` against the other two (Eq. 14).
    pub delta: f64,
    /// Number of like-minded users `K` in the local matrix.
    pub k: usize,
    /// Number of similar items `M` in the local matrix.
    pub m: usize,
    /// The smoothing-discount parameter `w` of Eq. 11 (called ε there):
    /// original ratings weigh `w`, smoothed ones `1-w`.
    pub w: f64,
    /// Candidate pool size as a multiple of `K`: the online phase walks
    /// iCluster until it has `candidate_factor · K` candidates before
    /// ranking them with Eq. 10. Larger pools cost more per request but
    /// approximate a whole-matrix search better.
    pub candidate_factor: usize,
    /// GIS construction parameters (threshold, neighbor cap, threads).
    pub gis: GisConfig,
    /// K-means iteration cap.
    pub kmeans_iterations: usize,
    /// Seed for K-means initialization.
    pub seed: u64,
    /// Worker threads for the offline phase (`None` = auto).
    pub threads: Option<usize>,
    /// Whether to smooth unrated cells (Eq. 7). Turning this off is the
    /// "no smoothing" ablation: candidates and estimators then see only
    /// original ratings.
    pub use_smoothing: bool,
    /// Storage precision of the serving weight planes. Online-only: it
    /// never changes what the offline phase builds, and predictions stay
    /// within the documented quantization tolerance of the f64 reference
    /// path (DESIGN.md §6c). `U16` (default) is invisible next to model
    /// error; `U8` halves the plane again at a coarser tolerance.
    pub plane_precision: PlanePrecision,
}

impl Default for CfsfConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl CfsfConfig {
    /// The paper's MovieLens parameterization.
    pub fn paper() -> Self {
        Self {
            clusters: 30,
            lambda: 0.8,
            delta: 0.1,
            k: 25,
            m: 95,
            w: 0.35,
            candidate_factor: 4,
            gis: GisConfig::default(),
            kmeans_iterations: 20,
            seed: 42,
            threads: None,
            use_smoothing: true,
            plane_precision: PlanePrecision::default(),
        }
    }

    /// A scaled-down configuration for small test matrices.
    pub fn small() -> Self {
        Self {
            clusters: 4,
            k: 10,
            m: 20,
            ..Self::paper()
        }
    }

    /// Validates ranges; called by [`crate::Cfsf::fit`].
    pub fn validate(&self) -> Result<(), CfsfError> {
        fn unit(name: &'static str, v: f64) -> Result<(), CfsfError> {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(CfsfError::InvalidParameter {
                    name,
                    message: format!("{v} is outside [0, 1]"),
                });
            }
            Ok(())
        }
        unit("lambda", self.lambda)?;
        unit("delta", self.delta)?;
        unit("w", self.w)?;
        if self.clusters == 0 {
            return Err(CfsfError::InvalidParameter {
                name: "clusters",
                message: "must be at least 1".into(),
            });
        }
        if self.k == 0 {
            return Err(CfsfError::InvalidParameter {
                name: "k",
                message: "must be at least 1".into(),
            });
        }
        if self.m == 0 {
            return Err(CfsfError::InvalidParameter {
                name: "m",
                message: "must be at least 1".into(),
            });
        }
        if self.candidate_factor == 0 {
            return Err(CfsfError::InvalidParameter {
                name: "candidate_factor",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// Builder-style override of `λ`.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override of `δ`.
    #[must_use]
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Builder-style override of `w`.
    #[must_use]
    pub fn with_w(mut self, w: f64) -> Self {
        self.w = w;
        self
    }

    /// Builder-style override of `M`.
    #[must_use]
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Builder-style override of `K`.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Builder-style override of the cluster count `C`.
    #[must_use]
    pub fn with_clusters(mut self, clusters: usize) -> Self {
        self.clusters = clusters;
        self
    }

    /// Builder-style override of the serving-plane precision.
    #[must_use]
    pub fn with_plane_precision(mut self, precision: PlanePrecision) -> Self {
        self.plane_precision = precision;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_five() {
        let c = CfsfConfig::paper();
        assert_eq!(c.clusters, 30);
        assert_eq!(c.lambda, 0.8);
        assert_eq!(c.delta, 0.1);
        assert_eq!(c.k, 25);
        assert_eq!(c.m, 95);
        assert_eq!(c.w, 0.35);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(CfsfConfig::paper().with_lambda(1.5).validate().is_err());
        assert!(CfsfConfig::paper().with_delta(-0.1).validate().is_err());
        assert!(CfsfConfig::paper().with_w(f64::NAN).validate().is_err());
        assert!(CfsfConfig::paper().with_m(0).validate().is_err());
        assert!(CfsfConfig::paper().with_k(0).validate().is_err());
        assert!(CfsfConfig::paper().with_clusters(0).validate().is_err());
        let mut c = CfsfConfig::paper();
        c.candidate_factor = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_override_single_fields() {
        let c = CfsfConfig::paper().with_m(50).with_k(40).with_lambda(0.5);
        assert_eq!(c.m, 50);
        assert_eq!(c.k, 40);
        assert_eq!(c.lambda, 0.5);
        assert_eq!(c.delta, 0.1); // untouched
    }

    #[test]
    fn plane_precision_defaults_to_u16_and_overrides() {
        assert_eq!(CfsfConfig::paper().plane_precision, PlanePrecision::U16);
        assert_eq!(CfsfConfig::small().plane_precision, PlanePrecision::U16);
        let c = CfsfConfig::small().with_plane_precision(PlanePrecision::U8);
        assert_eq!(c.plane_precision, PlanePrecision::U8);
        assert!(c.validate().is_ok());
    }
}
