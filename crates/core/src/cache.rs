//! Sharded, capacity-bounded cache for per-user neighbor selections.
//!
//! The online phase caches each user's top-`K` like-minded-user selection
//! ("caching intermediate results", §V-D). A single global
//! `RwLock<HashMap>` serializes every cold miss across all serving
//! threads and grows without bound; this cache shards by user id so
//! concurrent `predict_batch` traffic touches disjoint locks, and bounds
//! memory with per-shard second-chance (clock) eviction so the footprint
//! stays fixed at millions of users.
//!
//! Sharding is by `user.index() % SHARDS`: user ids are dense row indices,
//! so consecutive users — the common batch layout — spread perfectly
//! evenly. Each shard holds `capacity / SHARDS` slots in a clock ring; a
//! hit sets the slot's reference bit (an atomic, so read locks suffice),
//! and an insert into a full shard advances the clock hand, giving each
//! recently-referenced entry a second chance before evicting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use cf_matrix::UserId;

/// A cached selection: the user's top-`K` like-minded users.
pub(crate) type Selection = Arc<Vec<(UserId, f64)>>;

/// Number of shards. A small power of two: enough to keep a typical
/// thread pool off each other's locks, few enough that per-shard capacity
/// stays meaningful for small caches.
const SHARDS: usize = 16;

/// Default total capacity (entries across all shards). At the paper's
/// `K = 25` a full cache is ~a few hundred MB at this bound — bounded no
/// matter how many millions of distinct users a serving process sees.
pub(crate) const DEFAULT_CAPACITY: usize = 1 << 20;

struct Slot {
    user: UserId,
    value: Selection,
    /// Second-chance reference bit; set on hit under the shard read lock.
    referenced: AtomicBool,
}

#[derive(Default)]
struct Shard {
    /// user → index into `slots`.
    map: HashMap<UserId, usize>,
    slots: Vec<Slot>,
    /// Clock hand for second-chance eviction.
    hand: usize,
}

/// The sharded neighbor cache. All methods take `&self`; interior
/// mutability is per-shard.
pub(crate) struct ShardedCache {
    shards: Vec<RwLock<Shard>>,
    shard_capacity: usize,
}

impl ShardedCache {
    /// A cache bounded at (roughly) `capacity` entries, rounded up to a
    /// multiple of the shard count.
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
        }
    }

    #[inline]
    fn shard(&self, user: UserId) -> &RwLock<Shard> {
        &self.shards[user.index() % SHARDS]
    }

    /// Recovers a shard whose lock was poisoned by a panicking holder:
    /// clears the poison flag and resets the shard to empty. The cache is
    /// pure derived state, so dropping one shard's entries costs a few
    /// re-selections — strictly better than every later request on the
    /// shard panicking on `expect`.
    fn reset_poisoned(lock: &RwLock<Shard>) {
        cf_obs::counter!("cache.poison_reset").inc();
        lock.clear_poison();
        let mut s = lock
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        s.map.clear();
        s.slots.clear();
        s.hand = 0;
    }

    /// Looks up a cached selection, marking it recently used.
    pub(crate) fn get(&self, user: UserId) -> Option<Selection> {
        let lock = self.shard(user);
        let shard = match lock.read() {
            Ok(g) => g,
            Err(p) => {
                // Poisoned shard: release the poisoned guard, then reset
                // it and report a miss.
                drop(p);
                Self::reset_poisoned(lock);
                return None;
            }
        };
        let &slot = shard.map.get(&user)?;
        let s = &shard.slots[slot];
        s.referenced.store(true, Ordering::Relaxed);
        Some(Arc::clone(&s.value))
    }

    /// Inserts a computed selection, returning the cached `Arc`. When a
    /// racing thread inserted the same user first, the incumbent wins and
    /// is returned — all racers end up sharing one allocation, so a
    /// selection is never silently replaced ("no lost updates").
    pub(crate) fn insert(&self, user: UserId, value: Selection) -> Selection {
        let lock = self.shard(user);
        let mut shard = match lock.write() {
            Ok(g) => g,
            Err(p) => {
                drop(p); // release the poisoned guard before resetting
                Self::reset_poisoned(lock);
                match lock.write() {
                    Ok(g) => g,
                    // A second poisoning between reset and re-acquire:
                    // the shard was just emptied, the guard is usable.
                    Err(p) => p.into_inner(),
                }
            }
        };
        #[cfg(feature = "faultinject")]
        cf_faultinject::maybe_panic("cache.poison");
        if let Some(&slot) = shard.map.get(&user) {
            let s = &shard.slots[slot];
            s.referenced.store(true, Ordering::Relaxed);
            return Arc::clone(&s.value);
        }
        let slot = if shard.slots.len() < self.shard_capacity {
            shard.slots.push(Slot {
                user,
                value: Arc::clone(&value),
                referenced: AtomicBool::new(false),
            });
            shard.slots.len() - 1
        } else {
            // Second chance: clear reference bits until an unreferenced
            // victim turns up. Terminates within two laps.
            let victim = loop {
                let hand = shard.hand;
                shard.hand = (hand + 1) % shard.slots.len();
                let s = &shard.slots[hand];
                if s.referenced.swap(false, Ordering::Relaxed) {
                    continue;
                }
                break hand;
            };
            let old = shard.slots[victim].user;
            shard.map.remove(&old);
            shard.slots[victim] = Slot {
                user,
                value: Arc::clone(&value),
                referenced: AtomicBool::new(false),
            };
            victim
        };
        shard.map.insert(user, slot);
        value
    }

    /// Number of cached selections across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.read() {
                Ok(g) => g.map.len(),
                Err(p) => {
                    drop(p); // release the poisoned guard before resetting
                    Self::reset_poisoned(s);
                    0
                }
            })
            .sum()
    }

    /// Total entry bound (never exceeded by [`Self::len`]).
    pub(crate) fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }

    /// Drops every cached selection. A poisoned shard is recovered on the
    /// way through — clearing is exactly the reset anyway.
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            let mut s = match shard.write() {
                Ok(g) => g,
                Err(p) => {
                    cf_obs::counter!("cache.poison_reset").inc();
                    shard.clear_poison();
                    p.into_inner()
                }
            };
            s.map.clear();
            s.slots.clear();
            s.hand = 0;
        }
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("shards", &SHARDS)
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sel(u: u32) -> Selection {
        Arc::new(vec![(UserId::new(u), 1.0)])
    }

    /// Panics while holding a shard's write lock, leaving it poisoned.
    fn poison_shard(c: &ShardedCache, shard: usize) {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = c.shards[shard].write().unwrap();
            panic!("poison the shard");
        }));
        assert!(r.is_err());
        assert!(c.shards[shard].is_poisoned());
    }

    #[test]
    fn poisoned_shard_recovers_on_get() {
        let c = ShardedCache::new(64);
        c.insert(UserId::new(0), sel(0));
        c.insert(UserId::new(1), sel(1)); // different shard, must survive
        poison_shard(&c, 0);
        // First touch reports a miss and resets the shard.
        assert!(c.get(UserId::new(0)).is_none());
        assert!(!c.shards[0].is_poisoned());
        // The shard serves again; other shards were never affected.
        let v = c.insert(UserId::new(0), sel(0));
        assert!(Arc::ptr_eq(&v, &c.get(UserId::new(0)).unwrap()));
        assert!(c.get(UserId::new(1)).is_some());
    }

    #[test]
    fn poisoned_shard_recovers_on_insert_len_and_clear() {
        let c = ShardedCache::new(64);
        poison_shard(&c, 0);
        let v = c.insert(UserId::new(16), sel(16));
        assert!(Arc::ptr_eq(&v, &c.get(UserId::new(16)).unwrap()));

        poison_shard(&c, 1);
        assert_eq!(c.len(), 1); // poisoned shard counts as empty
        poison_shard(&c, 2);
        c.clear();
        assert_eq!(c.len(), 0);
        assert!((0..3).all(|s| !c.shards[s].is_poisoned()));
    }

    #[test]
    fn insert_then_get_shares_the_arc() {
        let c = ShardedCache::new(64);
        let v = c.insert(UserId::new(3), sel(3));
        let hit = c.get(UserId::new(3)).expect("cached");
        assert!(Arc::ptr_eq(&v, &hit));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn racing_insert_keeps_the_incumbent() {
        let c = ShardedCache::new(64);
        let first = c.insert(UserId::new(5), sel(5));
        let second = c.insert(UserId::new(5), sel(99));
        assert!(Arc::ptr_eq(&first, &second), "incumbent must win");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_is_a_hard_bound_and_misses_still_serve() {
        let c = ShardedCache::new(32);
        for u in 0..500u32 {
            c.insert(UserId::new(u), sel(u));
        }
        assert!(c.len() <= c.capacity(), "{} > {}", c.len(), c.capacity());
        // Every user remains insertable/fetchable after heavy eviction.
        let v = c.insert(UserId::new(1000), sel(1000));
        assert!(Arc::ptr_eq(&v, &c.get(UserId::new(1000)).unwrap()));
    }

    #[test]
    fn second_chance_prefers_evicting_unreferenced_entries() {
        // One shard gets 2 slots (capacity 32 / 16 shards); users 0, 16,
        // 32 share shard 0. Touch user 0, insert user 32: user 16 (never
        // referenced since insert) must be the victim.
        let c = ShardedCache::new(32);
        c.insert(UserId::new(0), sel(0));
        c.insert(UserId::new(16), sel(16));
        assert!(c.get(UserId::new(0)).is_some()); // sets the ref bit
        c.insert(UserId::new(32), sel(32));
        assert!(c.get(UserId::new(0)).is_some(), "referenced entry kept");
        assert!(c.get(UserId::new(16)).is_none(), "unreferenced evicted");
        assert!(c.get(UserId::new(32)).is_some());
    }

    #[test]
    fn clear_empties_every_shard() {
        let c = ShardedCache::new(64);
        for u in 0..40u32 {
            c.insert(UserId::new(u), sel(u));
        }
        c.clear();
        assert_eq!(c.len(), 0);
        assert!(c.get(UserId::new(7)).is_none());
    }
}
