//! Sharded, capacity-bounded cache for per-user neighbor selections.
//!
//! The online phase caches each user's top-`K` like-minded-user selection
//! ("caching intermediate results", §V-D). A single global
//! `RwLock<HashMap>` serializes every cold miss across all serving
//! threads and grows without bound; this cache shards by user id so
//! concurrent `predict_batch` traffic touches disjoint locks, and bounds
//! memory with per-shard second-chance (clock) eviction so the footprint
//! stays fixed at millions of users.
//!
//! Sharding is by `user.index() % SHARDS`: user ids are dense row indices,
//! so consecutive users — the common batch layout — spread perfectly
//! evenly. Each shard holds `capacity / SHARDS` slots in a clock ring; a
//! hit sets the slot's reference bit (an atomic, so read locks suffice),
//! and an insert into a full shard advances the clock hand, giving each
//! recently-referenced entry a second chance before evicting.
//!
//! The insert/evict/poison-reset logic lives in [`ShardedCacheCore`],
//! generic over the [`cf_obs::sync::Shim`] primitive family: production
//! instantiates it with [`StdShim`] (this module's [`ShardedCache`]),
//! while the `cf-analysis` loom-lite model checker instantiates the
//! *same* logic with scheduler-instrumented primitives and exhaustively
//! explores thread interleavings against its invariants (bounded
//! capacity, no lost entries, poison reset never breaks structure).

use std::collections::HashMap;
use std::sync::Arc;

use cf_matrix::UserId;
use cf_obs::sync::{Ordering, Shim, ShimAtomicBool, ShimRwLock, StdShim};

/// A cached selection: the user's top-`K` like-minded users.
pub(crate) type Selection = Arc<Vec<(UserId, f64)>>;

/// Number of shards in the production cache. A small power of two:
/// enough to keep a typical thread pool off each other's locks, few
/// enough that per-shard capacity stays meaningful for small caches.
const SHARDS: usize = 16;

/// Default total capacity (entries across all shards). At the paper's
/// `K = 25` a full cache is ~a few hundred MB at this bound — bounded no
/// matter how many millions of distinct users a serving process sees.
pub(crate) const DEFAULT_CAPACITY: usize = 1 << 20;

/// One clock-ring slot: a key, its value, and the second-chance bit.
struct Slot<S: Shim, V> {
    key: u32,
    value: V,
    /// Second-chance reference bit; set on hit under the shard read lock.
    referenced: S::AtomicBool,
}

/// One shard's data, guarded by a `S::RwLock`.
struct Shard<S: Shim, V> {
    /// key → index into `slots`.
    map: HashMap<u32, usize>,
    slots: Vec<Slot<S, V>>,
    /// Clock hand for second-chance eviction.
    hand: usize,
}

impl<S: Shim, V> Default for Shard<S, V> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
        }
    }
}

/// The schedulable cache core: sharded second-chance eviction with
/// poisoned-shard self-reset, generic over the synchronization shim.
///
/// All methods take `&self`; interior mutability is per-shard. Keys are
/// raw `u32` (production wraps [`cf_matrix::UserId`]); values are any
/// cheaply-cloneable type (production uses an `Arc`).
pub struct ShardedCacheCore<S: Shim, V: Clone + Send + Sync + 'static> {
    shards: Vec<S::RwLock<Shard<S, V>>>,
    shard_capacity: usize,
}

impl<S: Shim, V: Clone + Send + Sync + 'static> ShardedCacheCore<S, V> {
    /// A cache of `shards` shards bounded at (roughly) `capacity` total
    /// entries, rounded up to a multiple of the shard count.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| S::RwLock::new(Shard::default()))
                .collect(),
            shard_capacity: capacity.div_ceil(shards).max(1),
        }
    }

    #[inline]
    fn shard(&self, key: u32) -> &S::RwLock<Shard<S, V>> {
        &self.shards[key as usize % self.shards.len()]
    }

    /// Recovers a shard whose lock was poisoned by a panicking holder:
    /// clears the poison flag and resets the shard to empty. The cache is
    /// pure derived state, so dropping one shard's entries costs a few
    /// re-selections — strictly better than every later request on the
    /// shard panicking on `expect`.
    fn reset_poisoned(lock: &S::RwLock<Shard<S, V>>) {
        cf_obs::counter!("cache.poison_reset").inc();
        lock.clear_poison();
        let mut s = lock.write_recover();
        s.map.clear();
        s.slots.clear();
        s.hand = 0;
    }

    /// Looks up a cached value, marking it recently used.
    pub fn get(&self, key: u32) -> Option<V> {
        let lock = self.shard(key);
        let shard = match lock.read() {
            Ok(g) => g,
            Err(_) => {
                // Poisoned shard: reset it and report a miss.
                Self::reset_poisoned(lock);
                return None;
            }
        };
        let &slot = shard.map.get(&key)?;
        let s = &shard.slots[slot];
        s.referenced.store(true, Ordering::Relaxed);
        Some(s.value.clone())
    }

    /// Inserts a computed value, returning the cached one. When a racing
    /// thread inserted the same key first, the incumbent wins and is
    /// returned — all racers end up sharing one value, so an entry is
    /// never silently replaced ("no lost updates").
    pub fn insert(&self, key: u32, value: V) -> V {
        let lock = self.shard(key);
        let mut shard = match lock.write() {
            Ok(g) => g,
            Err(_) => {
                Self::reset_poisoned(lock);
                // A second poisoning between reset and re-acquire: the
                // shard was just emptied, the data is usable regardless.
                lock.write_recover()
            }
        };
        #[cfg(feature = "faultinject")]
        cf_faultinject::maybe_panic("cache.poison");
        if let Some(&slot) = shard.map.get(&key) {
            let s = &shard.slots[slot];
            s.referenced.store(true, Ordering::Relaxed);
            return s.value.clone();
        }
        let slot = if shard.slots.len() < self.shard_capacity {
            shard.slots.push(Slot {
                key,
                value: value.clone(),
                referenced: S::AtomicBool::new(false),
            });
            shard.slots.len() - 1
        } else {
            // Second chance: clear reference bits until an unreferenced
            // victim turns up. Terminates within two laps.
            let victim = loop {
                let hand = shard.hand;
                shard.hand = (hand + 1) % shard.slots.len();
                let s = &shard.slots[hand];
                if s.referenced.swap(false, Ordering::Relaxed) {
                    continue;
                }
                break hand;
            };
            let old = shard.slots[victim].key;
            shard.map.remove(&old);
            shard.slots[victim] = Slot {
                key,
                value: value.clone(),
                referenced: S::AtomicBool::new(false),
            };
            victim
        };
        shard.map.insert(key, slot);
        value
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.read() {
                Ok(g) => g.map.len(),
                Err(_) => {
                    Self::reset_poisoned(s);
                    0
                }
            })
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry bound (never exceeded by [`Self::len`]).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Drops every cached entry. A poisoned shard is recovered on the
    /// way through — clearing is exactly the reset anyway.
    pub fn clear(&self) {
        for shard in &self.shards {
            if shard.is_poisoned() {
                cf_obs::counter!("cache.poison_reset").inc();
                shard.clear_poison();
            }
            let mut s = shard.write_recover();
            s.map.clear();
            s.slots.clear();
            s.hand = 0;
        }
    }

    /// Instrumentation (tests and the model checker): poisons shard
    /// `idx`'s lock exactly as a panicking writer would.
    pub fn poison_shard(&self, idx: usize) {
        self.shards[idx % self.shards.len()].poison();
    }

    /// Whether shard `idx`'s lock is currently poisoned.
    pub fn is_shard_poisoned(&self, idx: usize) -> bool {
        self.shards[idx % self.shards.len()].is_poisoned()
    }

    /// Structural integrity check (model checker / tests): every map
    /// entry points at a slot holding its key, the map and slot tables
    /// agree in size, and no shard exceeds its capacity. Ignores poison
    /// (inspects whatever data is there).
    pub fn integrity(&self) -> Result<(), String> {
        for (i, lock) in self.shards.iter().enumerate() {
            let s = lock.write_recover();
            if s.slots.len() > self.shard_capacity {
                return Err(format!(
                    "shard {i}: {} slots exceed capacity {}",
                    s.slots.len(),
                    self.shard_capacity
                ));
            }
            if s.map.len() != s.slots.len() {
                return Err(format!(
                    "shard {i}: map has {} entries but {} slots",
                    s.map.len(),
                    s.slots.len()
                ));
            }
            for (&key, &slot) in &s.map {
                if slot >= s.slots.len() {
                    return Err(format!("shard {i}: key {key} → dangling slot {slot}"));
                }
                if s.slots[slot].key != key {
                    return Err(format!(
                        "shard {i}: key {key} → slot {slot} holding key {}",
                        s.slots[slot].key
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The production neighbor cache: [`ShardedCacheCore`] over std
/// primitives, keyed by [`UserId`].
pub(crate) struct ShardedCache {
    core: ShardedCacheCore<StdShim, Selection>,
}

impl ShardedCache {
    /// A cache bounded at (roughly) `capacity` entries, rounded up to a
    /// multiple of the shard count.
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            core: ShardedCacheCore::new(SHARDS, capacity),
        }
    }

    /// Looks up a cached selection, marking it recently used.
    pub(crate) fn get(&self, user: UserId) -> Option<Selection> {
        self.core.get(user.0)
    }

    /// Inserts a computed selection, returning the cached `Arc`. When a
    /// racing thread inserted the same user first, the incumbent wins and
    /// is returned — all racers end up sharing one allocation.
    pub(crate) fn insert(&self, user: UserId, value: Selection) -> Selection {
        self.core.insert(user.0, value)
    }

    /// Number of cached selections across all shards.
    pub(crate) fn len(&self) -> usize {
        self.core.len()
    }

    /// Total entry bound (never exceeded by [`Self::len`]).
    pub(crate) fn capacity(&self) -> usize {
        self.core.capacity()
    }

    /// Drops every cached selection.
    pub(crate) fn clear(&self) {
        self.core.clear()
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("shards", &SHARDS)
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sel(u: u32) -> Selection {
        Arc::new(vec![(UserId::new(u), 1.0)])
    }

    /// Poisons a shard's lock as a panicking writer would.
    fn poison_shard(c: &ShardedCache, shard: usize) {
        c.core.poison_shard(shard);
        assert!(c.core.is_shard_poisoned(shard));
    }

    #[test]
    fn poisoned_shard_recovers_on_get() {
        let c = ShardedCache::new(64);
        c.insert(UserId::new(0), sel(0));
        c.insert(UserId::new(1), sel(1)); // different shard, must survive
        poison_shard(&c, 0);
        // First touch reports a miss and resets the shard.
        assert!(c.get(UserId::new(0)).is_none());
        assert!(!c.core.is_shard_poisoned(0));
        // The shard serves again; other shards were never affected.
        let v = c.insert(UserId::new(0), sel(0));
        assert!(Arc::ptr_eq(&v, &c.get(UserId::new(0)).unwrap()));
        assert!(c.get(UserId::new(1)).is_some());
    }

    #[test]
    fn poisoned_shard_recovers_on_insert_len_and_clear() {
        let c = ShardedCache::new(64);
        poison_shard(&c, 0);
        let v = c.insert(UserId::new(16), sel(16));
        assert!(Arc::ptr_eq(&v, &c.get(UserId::new(16)).unwrap()));

        poison_shard(&c, 1);
        assert_eq!(c.len(), 1); // poisoned shard counts as empty
        poison_shard(&c, 2);
        c.clear();
        assert_eq!(c.len(), 0);
        assert!((0..3).all(|s| !c.core.is_shard_poisoned(s)));
    }

    #[test]
    fn insert_then_get_shares_the_arc() {
        let c = ShardedCache::new(64);
        let v = c.insert(UserId::new(3), sel(3));
        let hit = c.get(UserId::new(3)).expect("cached");
        assert!(Arc::ptr_eq(&v, &hit));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn racing_insert_keeps_the_incumbent() {
        let c = ShardedCache::new(64);
        let first = c.insert(UserId::new(5), sel(5));
        let second = c.insert(UserId::new(5), sel(99));
        assert!(Arc::ptr_eq(&first, &second), "incumbent must win");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_is_a_hard_bound_and_misses_still_serve() {
        let c = ShardedCache::new(32);
        for u in 0..500u32 {
            c.insert(UserId::new(u), sel(u));
        }
        assert!(c.len() <= c.capacity(), "{} > {}", c.len(), c.capacity());
        // Every user remains insertable/fetchable after heavy eviction.
        let v = c.insert(UserId::new(1000), sel(1000));
        assert!(Arc::ptr_eq(&v, &c.get(UserId::new(1000)).unwrap()));
        c.core.integrity().expect("structure intact after eviction");
    }

    #[test]
    fn second_chance_prefers_evicting_unreferenced_entries() {
        // One shard gets 2 slots (capacity 32 / 16 shards); users 0, 16,
        // 32 share shard 0. Touch user 0, insert user 32: user 16 (never
        // referenced since insert) must be the victim.
        let c = ShardedCache::new(32);
        c.insert(UserId::new(0), sel(0));
        c.insert(UserId::new(16), sel(16));
        assert!(c.get(UserId::new(0)).is_some()); // sets the ref bit
        c.insert(UserId::new(32), sel(32));
        assert!(c.get(UserId::new(0)).is_some(), "referenced entry kept");
        assert!(c.get(UserId::new(16)).is_none(), "unreferenced evicted");
        assert!(c.get(UserId::new(32)).is_some());
    }

    #[test]
    fn clear_empties_every_shard() {
        let c = ShardedCache::new(64);
        for u in 0..40u32 {
            c.insert(UserId::new(u), sel(u));
        }
        c.clear();
        assert_eq!(c.len(), 0);
        assert!(c.get(UserId::new(7)).is_none());
    }

    #[test]
    fn core_integrity_holds_through_poison_reset() {
        let c: ShardedCacheCore<StdShim, u32> = ShardedCacheCore::new(2, 4);
        for k in 0..10 {
            c.insert(k, k * 100);
        }
        c.integrity().expect("intact before poisoning");
        c.poison_shard(0);
        assert!(c.get(0).is_none(), "poisoned shard misses after reset");
        c.integrity().expect("intact after reset");
        assert_eq!(c.insert(0, 7), 7);
        assert_eq!(c.get(0), Some(7));
    }
}
