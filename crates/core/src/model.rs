//! The fitted CFSF model: offline phase and `Predictor` implementation.

use cf_cluster::{ClusterAssignment, ICluster, KMeansConfig, Smoothed, Smoother};
use cf_matrix::{DenseRatings, ItemId, Predictor, RatingMatrix, UserId, WeightPlanes};
use cf_similarity::Gis;

use crate::cache::ShardedCache;
use crate::{CfsfConfig, CfsfError};

/// Summary of what the offline phase built; useful for reports and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineSummary {
    /// Number of user clusters actually formed (≤ the configured `C`).
    pub clusters: usize,
    /// K-means iterations run.
    pub kmeans_iterations: usize,
    /// Whether K-means converged within its cap.
    pub kmeans_converged: bool,
    /// Directed neighbor pairs stored in the GIS.
    pub gis_pairs: usize,
    /// Cells imputed from cluster deviations (Eq. 7 second branch).
    pub smoothed_cells: usize,
}

/// A fitted CFSF model.
///
/// Fitting runs the offline phase (GIS, K-means, smoothing, iCluster);
/// [`Cfsf::predict`] runs the `O(M·K)` online phase. The per-user top-`K`
/// like-minded-user selection is cached behind a lock ("caching
/// intermediate results", §V-D), so predicting many items for one user —
/// the recommender workload — pays the selection cost once.
pub struct Cfsf {
    pub(crate) config: CfsfConfig,
    pub(crate) matrix: RatingMatrix,
    pub(crate) gis: Gis,
    pub(crate) clusters: ClusterAssignment,
    pub(crate) smoothed: Smoothed,
    pub(crate) icluster: ICluster,
    /// Dense ratings the online phase reads: the smoothed matrix, or the
    /// raw sparse ratings densified when `use_smoothing` is off.
    pub(crate) dense: DenseRatings,
    /// Quantized weight planes over `dense` (ε and provenance folded into
    /// an exact weight LUT at fit time, ratings stored as u16/u8 codes,
    /// presence bit-packed) — what the serving fast path actually reads.
    pub(crate) planes: WeightPlanes,
    /// Per-item GIS top-`M` lists flattened into structure-of-arrays
    /// strips at fit time for the online kernels.
    pub(crate) strips: crate::strips::ItemStrips,
    pub(crate) neighbor_cache: ShardedCache,
}

impl std::fmt::Debug for Cfsf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cfsf")
            .field("users", &self.matrix.num_users())
            .field("items", &self.matrix.num_items())
            .field("clusters", &self.clusters.k())
            .field("gis_pairs", &self.gis.stored_pairs())
            .field("cached_users", &self.neighbor_cache.len())
            .finish_non_exhaustive()
    }
}

impl Cfsf {
    /// Runs the offline phase on a training matrix.
    ///
    /// The matrix must contain the profiles of everyone predictions will
    /// be requested for — the paper "requires him or her to rate a certain
    /// number of items and then inserts a record in the item-user matrix"
    /// (§IV-A); the evaluation protocol's revealed Given-N rows play that
    /// role for test users.
    pub fn fit(matrix: &RatingMatrix, config: CfsfConfig) -> Result<Self, CfsfError> {
        config.validate()?;
        if matrix.num_ratings() == 0 {
            return Err(CfsfError::EmptyTrainingMatrix);
        }

        // Step 1: GIS (Eq. 5). The neighbor cap must accommodate the
        // configured M.
        let mut gis_config = config.gis.clone();
        if let Some(cap) = gis_config.max_neighbors {
            gis_config.max_neighbors = Some(cap.max(config.m));
        }
        gis_config.threads = gis_config.threads.or(config.threads);
        let gis = Gis::build(matrix, &gis_config);

        // Steps 2–4: clustering, smoothing, iCluster (Eq. 6–9).
        let kmeans = KMeansConfig {
            k: config.clusters,
            max_iterations: config.kmeans_iterations,
            seed: config.seed,
            threads: config.threads,
            ..Default::default()
        };
        let clusters = cf_cluster::KMeans::fit(matrix, &kmeans);
        let smoothed = Smoother::smooth(matrix, &clusters, config.threads);
        let icluster = ICluster::build(matrix, &smoothed, config.threads);

        let dense = if config.use_smoothing {
            smoothed.dense.clone()
        } else {
            DenseRatings::from_sparse(matrix)
        };
        let planes = WeightPlanes::from_dense_with(&dense, config.w, config.plane_precision);
        let strips = crate::strips::ItemStrips::build(&gis, config.m);

        let model = Self {
            config,
            matrix: matrix.clone(),
            gis,
            clusters,
            smoothed,
            icluster,
            dense,
            planes,
            strips,
            neighbor_cache: ShardedCache::new(crate::cache::DEFAULT_CAPACITY),
        };
        model.publish_footprint();
        Ok(model)
    }

    /// The configuration the model was fitted with.
    pub fn config(&self) -> &CfsfConfig {
        &self.config
    }

    /// The training matrix the model was fitted on.
    pub fn matrix(&self) -> &RatingMatrix {
        &self.matrix
    }

    /// The Global Item Similarity matrix.
    pub fn gis(&self) -> &Gis {
        &self.gis
    }

    /// The user cluster assignment.
    pub fn clusters(&self) -> &ClusterAssignment {
        &self.clusters
    }

    /// What the offline phase built.
    pub fn offline_summary(&self) -> OfflineSummary {
        OfflineSummary {
            clusters: self.clusters.k(),
            kmeans_iterations: self.clusters.iterations,
            kmeans_converged: self.clusters.converged,
            gis_pairs: self.gis.stored_pairs(),
            smoothed_cells: self.smoothed.cells_from_cluster,
        }
    }

    /// Drops all cached per-user neighbor selections (used by benchmarks
    /// that must measure cold-path latency).
    pub fn clear_caches(&self) {
        self.neighbor_cache.clear();
    }

    /// The rating quantization granularity of the serving planes
    /// (`0.0` for constant/empty planes). Per-cell rating error is at
    /// most half this; the kernel-equivalence tests derive their
    /// tolerance from it.
    pub fn plane_quant_step(&self) -> f64 {
        self.planes.step()
    }

    /// Publishes the serving working-set sizes as gauges
    /// (`model.bytes.planes`, `model.bytes.presence`,
    /// `model.bytes.strips`) so `/stats.json` shows the footprint.
    /// Called whenever the online structures are (re)built.
    pub(crate) fn publish_footprint(&self) {
        cf_obs::gauge!("model.bytes.planes").set(self.planes.cell_bytes() as i64);
        cf_obs::gauge!("model.bytes.presence").set(self.planes.present_bytes() as i64);
        cf_obs::gauge!("model.bytes.strips").set(self.strips.bytes() as i64);
    }

    /// Number of users with a cached neighbor selection.
    pub fn neighbor_cache_len(&self) -> usize {
        self.neighbor_cache.len()
    }

    /// The neighbor cache's entry bound ([`Self::neighbor_cache_len`]
    /// never exceeds it).
    pub fn neighbor_cache_capacity(&self) -> usize {
        self.neighbor_cache.capacity()
    }

    /// Replaces the neighbor cache with an empty one bounded at (roughly)
    /// `capacity` entries. Serving processes facing more distinct users
    /// than the default bound can trade memory for hit rate here.
    pub fn set_neighbor_cache_capacity(&mut self, capacity: usize) {
        self.neighbor_cache = ShardedCache::new(capacity);
    }

    /// Builds a new model with a modified configuration, reusing the
    /// offline structures whenever the change is online-only.
    ///
    /// `M`, `K`, `λ`, `δ`, `w`, `candidate_factor` and `use_smoothing`
    /// only affect the online phase, so sweeping them (Figs. 2, 3, 6, 7,
    /// 8 and the ablations) costs a clone instead of a refit. Changing
    /// `clusters`, the K-means budget/seed, or the GIS parameters falls
    /// back to a full [`Cfsf::fit`]. Note that a swept `M` larger than the
    /// GIS neighbor cap the model was *fitted* with will silently see
    /// shorter lists — fit with an adequate `gis.max_neighbors` first.
    pub fn reparameterize(&self, modify: impl FnOnce(&mut CfsfConfig)) -> Result<Self, CfsfError> {
        let mut config = self.config.clone();
        modify(&mut config);
        config.validate()?;

        let offline_changed = config.clusters != self.config.clusters
            || config.kmeans_iterations != self.config.kmeans_iterations
            || config.seed != self.config.seed
            || config.gis.threshold != self.config.gis.threshold
            || config.gis.max_neighbors != self.config.gis.max_neighbors;
        if offline_changed {
            return Self::fit(&self.matrix, config);
        }

        let dense = if config.use_smoothing {
            self.smoothed.dense.clone()
        } else {
            DenseRatings::from_sparse(&self.matrix)
        };
        let planes = WeightPlanes::from_dense_with(&dense, config.w, config.plane_precision);
        let strips = crate::strips::ItemStrips::build(&self.gis, config.m);
        let model = Self {
            config,
            matrix: self.matrix.clone(),
            gis: self.gis.clone(),
            clusters: self.clusters.clone(),
            smoothed: self.smoothed.clone(),
            icluster: self.icluster.clone(),
            dense,
            planes,
            strips,
            neighbor_cache: ShardedCache::new(crate::cache::DEFAULT_CAPACITY),
        };
        model.publish_footprint();
        Ok(model)
    }

    /// Scores every item the user hasn't rated and returns the best `n`
    /// as `(item, predicted rating)`, best first. Ties break toward the
    /// lower item id.
    pub fn recommend_top_n(&self, user: UserId, n: usize) -> Vec<(ItemId, f64)> {
        self.recommend_top_n_in_range(user, n, 0..u32::MAX)
    }

    /// [`recommend_top_n`](Self::recommend_top_n) restricted to the item
    /// stripe `items` (end clamped to the item count). This is the
    /// scatter-gather primitive for sharded serving: each shard scores
    /// one stripe, and merging the per-stripe results with
    /// [`crate::topk::top_k_by_score`] reproduces the single-process
    /// answer bit for bit — any global top-`n` item is necessarily in
    /// its own stripe's top-`n`.
    pub fn recommend_top_n_in_range(
        &self,
        user: UserId,
        n: usize,
        items: std::ops::Range<u32>,
    ) -> Vec<(ItemId, f64)> {
        let end = items.end.min(self.matrix.num_items() as u32);
        let start = items.start.min(end);
        crate::topk::top_k_by_score(
            n,
            (start..end)
                .map(ItemId::new)
                .filter(|&i| !self.matrix.is_rated(user, i))
                .filter_map(|i| self.predict(user, i).map(|r| (i, r))),
        )
    }
}

impl Predictor for Cfsf {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        self.predict_with_breakdown(user, item).map(|b| b.fused)
    }

    fn name(&self) -> &'static str {
        "CFSF"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cf_data::SyntheticConfig;

    fn data() -> cf_data::Dataset {
        SyntheticConfig::small().generate()
    }

    #[test]
    fn fit_rejects_invalid_config() {
        let d = data();
        let e = Cfsf::fit(&d.matrix, CfsfConfig::small().with_lambda(7.0)).unwrap_err();
        assert!(matches!(
            e,
            CfsfError::InvalidParameter { name: "lambda", .. }
        ));
    }

    #[test]
    fn offline_summary_reflects_structures() {
        let d = data();
        let model = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        let s = model.offline_summary();
        assert_eq!(s.clusters, 4);
        assert!(s.kmeans_iterations >= 1);
        assert!(s.gis_pairs > 0);
        assert!(s.smoothed_cells > 0);
    }

    #[test]
    fn predictions_are_on_scale_for_every_user_item_pair_sampled() {
        let d = data();
        let model = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        for u in (0..d.matrix.num_users()).step_by(7) {
            for i in (0..d.matrix.num_items()).step_by(13) {
                if let Some(r) = model.predict(UserId::from(u), ItemId::from(i)) {
                    assert!((1.0..=5.0).contains(&r), "({u},{i}) -> {r}");
                }
            }
        }
    }

    #[test]
    fn deterministic_predictions() {
        let d = data();
        let a = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        let b = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        for u in (0..d.matrix.num_users()).step_by(11) {
            for i in (0..d.matrix.num_items()).step_by(17) {
                assert_eq!(
                    a.predict(UserId::from(u), ItemId::from(i)),
                    b.predict(UserId::from(u), ItemId::from(i))
                );
            }
        }
    }

    #[test]
    fn cache_does_not_change_results() {
        let d = data();
        let model = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        let u = UserId::new(3);
        let cold: Vec<Option<f64>> = (0..20)
            .map(|i| model.predict(u, ItemId::from(i as usize)))
            .collect();
        // second pass hits the per-user cache
        let warm: Vec<Option<f64>> = (0..20)
            .map(|i| model.predict(u, ItemId::from(i as usize)))
            .collect();
        assert_eq!(cold, warm);
        model.clear_caches();
        let recleared: Vec<Option<f64>> = (0..20)
            .map(|i| model.predict(u, ItemId::from(i as usize)))
            .collect();
        assert_eq!(cold, recleared);
    }

    #[test]
    fn recommend_top_n_excludes_rated_items_and_sorts() {
        let d = data();
        let model = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        let u = UserId::new(0);
        let recs = model.recommend_top_n(u, 10);
        assert!(!recs.is_empty());
        assert!(recs.len() <= 10);
        for &(i, r) in &recs {
            assert!(!d.matrix.is_rated(u, i), "{i:?} was already rated");
            assert!((1.0..=5.0).contains(&r));
        }
        assert!(recs.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    /// The scatter-gather identity sharded serving relies on: merging
    /// per-stripe `recommend_top_n_in_range` results with the same
    /// comparator reproduces the full recommend bit for bit, for any
    /// stripe count (including stripes that don't divide evenly).
    #[test]
    fn striped_recommend_merges_bit_for_bit() {
        let d = data();
        let model = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        let items = d.matrix.num_items() as u32;
        for u in [0usize, 3, 17] {
            let user = UserId::from(u);
            let n = 10;
            let full = model.recommend_top_n(user, n);
            for stripes in [1u32, 2, 3, 5] {
                let mut candidates = Vec::new();
                for s in 0..stripes {
                    let start = s * items / stripes;
                    let end = (s + 1) * items / stripes;
                    candidates.extend(model.recommend_top_n_in_range(user, n, start..end));
                }
                let merged = crate::topk::top_k_by_score(n, candidates);
                assert_eq!(full.len(), merged.len(), "stripes={stripes}");
                for (a, b) in full.iter().zip(&merged) {
                    assert_eq!(a.0, b.0, "stripes={stripes}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "stripes={stripes}");
                }
            }
        }
    }

    #[test]
    fn model_is_usable_across_threads() {
        let d = data();
        let model = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        let results = cf_parallel::par_map(16, 4, |i| {
            model.predict(UserId::from(i % 8), ItemId::from(i * 3))
        });
        let again = cf_parallel::par_map(16, 2, |i| {
            model.predict(UserId::from(i % 8), ItemId::from(i * 3))
        });
        assert_eq!(results, again);
    }

    #[test]
    fn reparameterize_online_only_matches_fresh_fit() {
        let d = data();
        let base = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        let swept = base.reparameterize(|c| c.lambda = 0.3).unwrap();
        let fresh = Cfsf::fit(&d.matrix, CfsfConfig::small().with_lambda(0.3)).unwrap();
        for u in (0..d.matrix.num_users()).step_by(9) {
            for i in (0..d.matrix.num_items()).step_by(15) {
                assert_eq!(
                    swept.predict(UserId::from(u), ItemId::from(i)),
                    fresh.predict(UserId::from(u), ItemId::from(i))
                );
            }
        }
    }

    #[test]
    fn reparameterize_offline_change_refits() {
        let d = data();
        let base = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        let refit = base.reparameterize(|c| c.clusters = 2).unwrap();
        assert_eq!(refit.offline_summary().clusters, 2);
        let fresh = Cfsf::fit(&d.matrix, CfsfConfig::small().with_clusters(2)).unwrap();
        for u in (0..d.matrix.num_users()).step_by(13) {
            assert_eq!(
                refit.predict(UserId::from(u), ItemId::new(3)),
                fresh.predict(UserId::from(u), ItemId::new(3))
            );
        }
    }

    #[test]
    fn reparameterize_rejects_invalid() {
        let d = data();
        let base = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        assert!(base.reparameterize(|c| c.lambda = 9.0).is_err());
    }

    #[test]
    fn ablation_without_smoothing_still_predicts() {
        let d = data();
        let mut cfg = CfsfConfig::small();
        cfg.use_smoothing = false;
        let model = Cfsf::fit(&d.matrix, cfg).unwrap();
        let mut produced = 0;
        for u in (0..d.matrix.num_users()).step_by(5) {
            for i in (0..d.matrix.num_items()).step_by(9) {
                if let Some(r) = model.predict(UserId::from(u), ItemId::from(i)) {
                    assert!((1.0..=5.0).contains(&r));
                    produced += 1;
                }
            }
        }
        assert!(produced > 0);
    }
}
