//! The online phase: local `M × K` matrix construction and the three
//! estimators `SIR'`, `SUR'`, `SUIR'` of Eq. 12.

use std::sync::Arc;

use cf_matrix::{ItemId, UserId};
use cf_similarity::{pair_weight, smoothing_weight, weighted_user_pcc};

use crate::{fuse, Cfsf};

/// A prediction together with its Eq. 12 components — what the local
/// `M × K` matrix produced before fusion. Exposed for tests, ablations,
/// and the parameter-sensitivity experiments (Figs. 6–8).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionBreakdown {
    /// Same-user-on-similar-items estimator, if computable.
    pub sir: Option<f64>,
    /// Like-minded-users-on-the-active-item estimator, if computable.
    pub sur: Option<f64>,
    /// Like-minded-users-on-similar-items estimator, if computable.
    pub suir: Option<f64>,
    /// The fused prediction (Eq. 14), clamped to the rating scale.
    pub fused: f64,
    /// True when no estimator was available and the model fell back to
    /// the smoothed cell value / user mean.
    pub used_fallback: bool,
    /// Similar items that actually contributed to `SIR'`.
    pub m_used: usize,
    /// Like-minded users selected for the local matrix.
    pub k_used: usize,
}

impl Cfsf {
    /// Selects the top `K` like-minded users for `user` (Eq. 10/11),
    /// walking the iCluster ranking to build the candidate pool. Results
    /// are cached per user: selection is independent of the active item.
    pub fn top_k_users(&self, user: UserId) -> Arc<Vec<(UserId, f64)>> {
        if let Some(hit) = self
            .neighbor_cache
            .read()
            .expect("cache lock poisoned")
            .get(&user)
        {
            cf_obs::counter!("online.neighbor_cache.hit").inc();
            return Arc::clone(hit);
        }
        cf_obs::counter!("online.neighbor_cache.miss").inc();
        let computed = Arc::new(self.select_top_k(user));
        self.neighbor_cache
            .write()
            .expect("cache lock poisoned")
            .entry(user)
            .or_insert_with(|| Arc::clone(&computed))
            .clone()
    }

    fn select_top_k(&self, user: UserId) -> Vec<(UserId, f64)> {
        let (items, vals) = self.matrix.user_row(user);
        if items.is_empty() {
            return Vec::new();
        }
        let want = self
            .config
            .k
            .saturating_mul(self.config.candidate_factor)
            .min(self.matrix.num_users());

        // Harvest candidates cluster by cluster, best cluster first
        // (§IV-E2: "selects users from clusters in iCluster one by one").
        let mut candidates: Vec<UserId> = Vec::with_capacity(want + 32);
        for &c in self.icluster.ranking(user) {
            for &u in self.clusters.members(c as usize) {
                // Users with no original ratings have fully-imputed rows
                // after smoothing; selecting them as "like-minded users"
                // would inject cluster consensus disguised as a person.
                if u != user && self.matrix.user_count(u) > 0 {
                    candidates.push(u);
                }
            }
            if candidates.len() >= want {
                break;
            }
        }

        // Rank candidates with the smoothing-aware weighted PCC (Eq. 10).
        let mean_a = self.matrix.user_mean(user);
        let mut scored: Vec<(UserId, f64)> = candidates
            .into_iter()
            .filter_map(|cand| {
                let s = weighted_user_pcc(
                    items,
                    vals,
                    mean_a,
                    &self.dense,
                    cand,
                    self.matrix.user_mean(cand),
                    self.config.w,
                );
                // Negatively correlated or signal-free users are never
                // "like-minded"; Eq. 12's denominators assume positive sims.
                (s > 0.0).then_some((cand, s))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("similarities are finite")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(self.config.k);
        scored
    }

    /// Runs the full online phase for `(user, item)` and reports every
    /// component. Returns `None` only when the model has no signal at all
    /// (no estimator, no smoothed cell, and an empty user profile).
    pub fn predict_with_breakdown(
        &self,
        user: UserId,
        item: ItemId,
    ) -> Option<PredictionBreakdown> {
        cf_obs::time_scope!("online.predict_ns");
        if user.index() >= self.matrix.num_users() || item.index() >= self.matrix.num_items() {
            cf_obs::counter!("online.no_signal").inc();
            return None;
        }
        let scale = self.matrix.scale();
        let eps = self.config.w;

        let similar_items = self.gis.top_m(item, self.config.m);
        let top_users = self.top_k_users(user);

        // --- SIR': the active user's (smoothed) ratings on similar items.
        let row_b = self.dense.row(user);
        let mut sir_num = 0.0;
        let mut sir_den = 0.0;
        let mut m_used = 0usize;
        for &(i_s, sim_s) in similar_items {
            let r = row_b[i_s.index()];
            if r.is_nan() {
                continue;
            }
            let w = smoothing_weight(self.dense.is_original(user, i_s), eps);
            sir_num += w * sim_s * r;
            sir_den += w * sim_s;
            m_used += 1;
        }
        let sir = (sir_den > f64::EPSILON).then(|| sir_num / sir_den);

        // --- SUR': like-minded users' (smoothed) ratings on the active
        // item, mean-centered per user.
        let mean_b = self.matrix.user_mean(user);
        let mut sur_num = 0.0;
        let mut sur_den = 0.0;
        for &(u_t, sim_t) in top_users.iter() {
            let Some(r) = self.dense.get(u_t, item) else {
                continue;
            };
            let w = smoothing_weight(self.dense.is_original(u_t, item), eps);
            sur_num += w * sim_t * (r - self.matrix.user_mean(u_t));
            sur_den += w * sim_t;
        }
        let sur = (sur_den > f64::EPSILON).then(|| mean_b + sur_num / sur_den);

        // --- SUIR': like-minded users' (smoothed) ratings on similar
        // items, weighted by the Eq. 13 pair weight. This double loop *is*
        // the local M × K matrix — O(M·K) work per request.
        let mut suir_num = 0.0;
        let mut suir_den = 0.0;
        for &(u_t, sim_t) in top_users.iter() {
            let row_t = self.dense.row(u_t);
            for &(i_s, sim_s) in similar_items {
                let r = row_t[i_s.index()];
                if r.is_nan() {
                    continue;
                }
                let pw = pair_weight(sim_s, sim_t);
                if pw <= 0.0 {
                    continue;
                }
                let w = smoothing_weight(self.dense.is_original(u_t, i_s), eps);
                suir_num += w * pw * r;
                suir_den += w * pw;
            }
        }
        let suir = (suir_den > f64::EPSILON).then(|| suir_num / suir_den);

        let fused = fuse(sir, sur, suir, self.config.lambda, self.config.delta);
        let (fused, used_fallback) = match fused {
            Some(v) => (v, false),
            None => {
                // No local evidence at all. The smoothed matrix still
                // imputes every cell; without smoothing, fall back to the
                // user's mean if they have a profile.
                if self.config.use_smoothing {
                    match self.smoothed.dense.get(user, item) {
                        Some(v) => (v, true),
                        None => {
                            cf_obs::counter!("online.no_signal").inc();
                            return None;
                        }
                    }
                } else if self.matrix.user_count(user) > 0 {
                    (mean_b, true)
                } else {
                    cf_obs::counter!("online.no_signal").inc();
                    return None;
                }
            }
        };

        cf_obs::counter!("online.predictions").inc();
        // `add(0)` still registers the metric, so a snapshot always carries
        // these names even for runs where the event never fires — absent
        // vs zero would be ambiguous to dashboards diffing runs.
        cf_obs::counter!("online.fallback").add(used_fallback as u64);
        cf_obs::counter!("online.estimator.sir").add(sir.is_some() as u64);
        cf_obs::counter!("online.estimator.sur").add(sur.is_some() as u64);
        cf_obs::counter!("online.estimator.suir").add(suir.is_some() as u64);
        cf_obs::histogram!("online.m_used").record(m_used as u64);
        cf_obs::histogram!("online.k_used").record(top_users.len() as u64);

        Some(PredictionBreakdown {
            sir,
            sur,
            suir,
            fused: scale.clamp(fused),
            used_fallback,
            m_used,
            k_used: top_users.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfsfConfig;
    use cf_data::SyntheticConfig;
    use cf_matrix::Predictor;

    fn model() -> Cfsf {
        let d = SyntheticConfig::small().generate();
        Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
    }

    #[test]
    fn top_k_respects_k_and_positivity() {
        let m = model();
        for u in 0..8usize {
            let top = m.top_k_users(UserId::from(u));
            assert!(top.len() <= m.config().k);
            assert!(top.windows(2).all(|w| w[0].1 >= w[1].1), "sorted desc");
            assert!(top.iter().all(|&(_, s)| s > 0.0));
            assert!(
                top.iter().all(|&(c, _)| c != UserId::from(u)),
                "self excluded"
            );
        }
    }

    #[test]
    fn top_k_cache_returns_same_list() {
        let m = model();
        let a = m.top_k_users(UserId::new(5));
        let b = m.top_k_users(UserId::new(5));
        assert!(Arc::ptr_eq(&a, &b), "second call should hit the cache");
    }

    #[test]
    fn breakdown_components_are_consistent_with_fusion() {
        let m = model();
        let mut checked = 0;
        for u in 0..20usize {
            for i in (0..120usize).step_by(11) {
                let Some(b) = m.predict_with_breakdown(UserId::from(u), ItemId::from(i)) else {
                    continue;
                };
                if b.used_fallback {
                    assert!(b.sir.is_none() && b.sur.is_none() && b.suir.is_none());
                } else {
                    let expect =
                        fuse(b.sir, b.sur, b.suir, m.config().lambda, m.config().delta).unwrap();
                    let clamped = m.matrix().scale().clamp(expect);
                    assert!((b.fused - clamped).abs() < 1e-12);
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "expected plenty of non-fallback predictions");
    }

    #[test]
    fn m_and_k_used_respect_configuration() {
        let m = model();
        for u in 0..10usize {
            for i in 0..10usize {
                if let Some(b) = m.predict_with_breakdown(UserId::from(u), ItemId::from(i)) {
                    assert!(b.m_used <= m.config().m);
                    assert!(b.k_used <= m.config().k);
                }
            }
        }
    }

    #[test]
    fn out_of_range_ids_return_none() {
        let m = model();
        assert!(m.predict(UserId::new(10_000), ItemId::new(0)).is_none());
        assert!(m.predict(UserId::new(0), ItemId::new(10_000)).is_none());
    }

    #[test]
    fn smoothing_fallback_always_produces_a_value_in_range() {
        let d = SyntheticConfig::small().generate();
        let m = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        // Every in-range pair must produce *some* prediction thanks to the
        // smoothed-matrix fallback.
        for u in (0..80usize).step_by(9) {
            for i in (0..120usize).step_by(13) {
                let r = m
                    .predict(UserId::from(u), ItemId::from(i))
                    .expect("smoothing guarantees a fallback");
                assert!((1.0..=5.0).contains(&r));
            }
        }
    }

    #[test]
    fn fused_prediction_is_convex_in_components() {
        // Eq. 14 is a convex combination, so (before clamping) the fused
        // value must lie within the envelope of the present components.
        let m = model();
        let mut seen = 0;
        for u in 0..30usize {
            for i in 0..40usize {
                let Some(b) = m.predict_with_breakdown(UserId::from(u), ItemId::from(i)) else {
                    continue;
                };
                if b.used_fallback {
                    continue;
                }
                let present: Vec<f64> = [b.sir, b.sur, b.suir].iter().flatten().copied().collect();
                let lo = present.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = present.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let unclamped =
                    fuse(b.sir, b.sur, b.suir, m.config().lambda, m.config().delta).unwrap();
                assert!(
                    unclamped >= lo - 1e-9 && unclamped <= hi + 1e-9,
                    "fused (unclamped) {unclamped} outside envelope [{lo}, {hi}]"
                );
                seen += 1;
            }
        }
        assert!(
            seen > 100,
            "too few non-fallback predictions sampled: {seen}"
        );
    }
}
