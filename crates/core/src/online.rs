//! The online phase: local `M × K` matrix construction and the three
//! estimators `SIR'`, `SUR'`, `SUIR'` of Eq. 12.
//!
//! Two implementations live here:
//!
//! - the **serving fast path** ([`Cfsf::predict_with_breakdown`]): reads
//!   the quantized [`cf_matrix::WeightPlanes`] (ε, presence, and
//!   provenance folded into one u16/u8 cell per entry with an exact
//!   weight LUT — one load per cell) and runs the Eq. 12 sums as branch-free
//!   multiply-accumulate with the dequantization fused into the loops —
//!   no per-cell `is_nan` test, no provenance-bit extraction, pair
//!   weights via a vectorizable reciprocal-square-root strip, and the
//!   next neighbor's plane row software-prefetched while the current one
//!   is in the MAC (the path is LLC-latency-bound, DESIGN.md §6c);
//! - the **reference path** ([`Cfsf::predict_with_breakdown_ref`]): the
//!   original per-cell f64 loops over the dense matrix. It is the ground
//!   truth the fast kernels are property-tested against (within the
//!   quantization tolerance `planes.step() + 1e-9` — weights are exact,
//!   so availability, overlap counts, and degrade levels match exactly)
//!   and the baseline the throughput benchmark measures speedups from.

use std::cell::RefCell;
use std::sync::Arc;

use cf_matrix::{ItemId, PlanesView, QuantCell, TypedPlanes, UserId};
use cf_similarity::{pair_weight, smoothing_weight, weighted_user_pcc_planes};

use crate::{fuse, Cfsf, DegradeLevel};

/// A prediction together with its Eq. 12 components — what the local
/// `M × K` matrix produced before fusion. Exposed for tests, ablations,
/// and the parameter-sensitivity experiments (Figs. 6–8).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionBreakdown {
    /// Same-user-on-similar-items estimator, if computable.
    pub sir: Option<f64>,
    /// Like-minded-users-on-the-active-item estimator, if computable.
    pub sur: Option<f64>,
    /// Like-minded-users-on-similar-items estimator, if computable.
    pub suir: Option<f64>,
    /// The fused prediction (Eq. 14), clamped to the rating scale.
    pub fused: f64,
    /// True when no estimator was available and the model fell back to
    /// the smoothed cell value / user mean / global mean — equivalent to
    /// [`DegradeLevel::is_fallback`] on [`Self::level`].
    pub used_fallback: bool,
    /// The degradation-ladder rung this prediction was served from.
    pub level: DegradeLevel,
    /// Similar items that actually contributed to `SIR'`.
    pub m_used: usize,
    /// Like-minded users selected for the local matrix.
    pub k_used: usize,
}

/// Per-thread request scratch: the Eq. 13 pair-weight strip for one
/// neighbor row (recomputed per neighbor). Reused across requests so the
/// hot path never allocates; the similar-item strips themselves are
/// precomputed per item at fit time ([`crate::strips::ItemStrips`]).
#[derive(Default)]
struct Scratch {
    pw: Vec<f64>,
}

/// `1/√y` to ≤ 2.6e-12 relative error, without touching the divider/sqrt
/// unit: the classic bit-shift initial guess (≤ 3.42e-2 relative error)
/// refined by two order-3 Householder steps, `x ← x·(1 + ½e + ⅜e²)` with
/// `e = 1 − y·x²`. Each step cubes the error (`δ' ≈ 2.5·δ³`, so
/// 3.4e-2 → 1.0e-4 → 2.5e-12), which leaves a ~400× margin against the
/// fast path's 1e-9 equivalence budget. Five fused mul-adds per step on
/// finite positive input, so LLVM vectorizes a strip of these where
/// `sqrt` + `div` would serialize on the divider — the pair-weight loop
/// is exactly such a strip.
#[inline]
fn rsqrt(y: f64) -> f64 {
    let mut x = f64::from_bits(0x5FE6_EB50_C7B5_37A9u64.wrapping_sub(y.to_bits() >> 1));
    for _ in 0..2 {
        let s = y * x;
        let e = (-s).mul_add(x, 1.0);
        let t = 0.375f64.mul_add(e, 0.5);
        let u = x * e;
        x = u.mul_add(t, x);
    }
    x
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

impl Cfsf {
    /// Selects the top `K` like-minded users for `user` (Eq. 10/11),
    /// walking the iCluster ranking to build the candidate pool. Results
    /// are cached per user in a sharded, capacity-bounded cache:
    /// selection is independent of the active item.
    pub fn top_k_users(&self, user: UserId) -> Arc<Vec<(UserId, f64)>> {
        if let Some(hit) = self.neighbor_cache.get(user) {
            cf_obs::counter!("online.neighbor_cache.hit").inc();
            return hit;
        }
        cf_obs::counter!("online.neighbor_cache.miss").inc();
        // Selection is isolated: a panic inside it (corrupt similarity
        // state, injected fault) degrades this request to an empty
        // neighbor list — the ladder below the estimators still serves —
        // and is NOT cached, so the next request retries selection.
        // Unwind safety: the closure captures only `&self` and the Copy
        // user id — no `&mut` (the `unwind-safe-mut` lint enforces this
        // shape) — and the partial result is dropped, so nothing can
        // observe half-built selection state.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.select_top_k(user))) {
            Ok(selection) => self.neighbor_cache.insert(user, Arc::new(selection)),
            Err(_) => {
                cf_obs::counter!("online.select_panic").inc();
                // Anomaly-note the active trace so the caught panic is
                // tail-kept and visible on /traces, not just a counter.
                cf_obs::trace::note("online.select_panic");
                Arc::new(Vec::new())
            }
        }
    }

    fn select_top_k(&self, user: UserId) -> Vec<(UserId, f64)> {
        #[cfg(feature = "faultinject")]
        {
            if cf_faultinject::fires("online.empty_neighbors") {
                cf_obs::counter!("online.injected.empty_neighbors").inc();
                return Vec::new();
            }
            cf_faultinject::maybe_panic("online.select_panic");
        }
        // Selection is cold-path work; it gets its own histogram so
        // `online.predict_ns` reflects steady-state serving latency.
        cf_obs::time_scope!("online.select_ns");
        let _trace_span = cf_obs::trace::span("select");
        let (items, vals) = self.matrix.user_row(user);
        if items.is_empty() {
            return Vec::new();
        }
        let want = self
            .config
            .k
            .saturating_mul(self.config.candidate_factor)
            .min(self.matrix.num_users());

        // Harvest candidates cluster by cluster, best cluster first
        // (§IV-E2: "selects users from clusters in iCluster one by one").
        let mut candidates: Vec<UserId> = Vec::with_capacity(want + 32);
        for &c in self.icluster.ranking(user) {
            for &u in self.clusters.members(c as usize) {
                // Users with no original ratings have fully-imputed rows
                // after smoothing; selecting them as "like-minded users"
                // would inject cluster consensus disguised as a person.
                if u != user && self.matrix.user_count(u) > 0 {
                    candidates.push(u);
                }
            }
            if candidates.len() >= want {
                break;
            }
        }

        // Rank candidates with the smoothing-aware weighted PCC (Eq. 10)
        // over the fused planes, keeping the top K via bounded partial
        // selection instead of a full sort.
        let mean_a = self.matrix.user_mean(user);
        crate::topk::top_k_by_score(
            self.config.k,
            candidates.into_iter().filter_map(|cand| {
                let s = weighted_user_pcc_planes(
                    items,
                    vals,
                    mean_a,
                    &self.planes,
                    cand,
                    self.matrix.user_mean(cand),
                );
                // Negatively correlated or signal-free users are never
                // "like-minded"; Eq. 12's denominators assume positive sims.
                (s > 0.0).then_some((cand, s))
            }),
        )
    }

    /// The fast Eq. 12 kernels over the quantized weight planes and the
    /// precomputed per-item strips. Dispatches on the plane precision
    /// once, then runs the monomorphized kernel. Returns
    /// `(sir, sur, suir, m_used)`.
    fn local_estimators(
        &self,
        user: UserId,
        item: ItemId,
        top_users: &[(UserId, f64)],
    ) -> (Option<f64>, Option<f64>, Option<f64>, usize) {
        match self.planes.view() {
            PlanesView::U16(v) => self.local_estimators_typed(&v, user, item, top_users),
            PlanesView::U8(v) => self.local_estimators_typed(&v, user, item, top_users),
        }
    }

    /// Monomorphized body of [`Cfsf::local_estimators`]: dequantization
    /// ([`cf_matrix::PlaneDequant::pair`]) is fused into every loop, and
    /// presence comes word-at-a-time from the bit-packed plane. Weights
    /// dequantize exactly (the LUT holds `0`/`ε`/`1−ε` verbatim), so
    /// denominators, `m_used`, and estimator availability are identical
    /// to the f64 reference; only numerators carry the ≤ `step/2` rating
    /// quantization error.
    fn local_estimators_typed<C: QuantCell>(
        &self,
        planes: &TypedPlanes<'_, C>,
        user: UserId,
        item: ItemId,
        top_users: &[(UserId, f64)],
    ) -> (Option<f64>, Option<f64>, Option<f64>, usize) {
        let dq = planes.dq();
        // A missing strip (id/structure disagreement mid-degradation)
        // contributes nothing: SIR'/SUIR' come out None, SUR' survives.
        let (idx, sim, sim2) = self.strips.try_get(item).unwrap_or((&[], &[], &[]));
        let m = idx.len();
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();

            // --- SIR': the active user's (smoothed) ratings on similar
            // items, dequantized straight off the user's plane row. The
            // presence bit gates the weight (absent cells contribute
            // exact zeros) and sums into `m_used` — no `is_nan` test.
            let sir_span = cf_obs::trace::span("estimator.sir");
            let row_b = planes.cell_row(user);
            let mut sir_num = 0.0;
            let mut sir_den = 0.0;
            let mut m_used = 0u64;
            for (&s, &c) in sim.iter().zip(idx) {
                let (w, wr, p) = dq.triple(row_b[c as usize]);
                sir_num += s * wr;
                sir_den += s * w;
                m_used += p;
            }
            let sir = (sir_den > f64::EPSILON).then(|| sir_num / sir_den);
            drop(sir_span);

            // --- SUR': like-minded users' (smoothed) ratings on the
            // active item, mean-centered per user: `w·(r − mean)` becomes
            // `w·r − w·mean` straight off the planes.
            let sur_span = cf_obs::trace::span("estimator.sur");
            let mean_b = self.matrix.user_mean(user);
            let mut sur_num = 0.0;
            let mut sur_den = 0.0;
            for &(u_t, sim_t) in top_users {
                let (w, wr) = planes.pair(u_t, item);
                sur_num += sim_t * (wr - w * self.matrix.user_mean(u_t));
                sur_den += sim_t * w;
            }
            let sur = (sur_den > f64::EPSILON).then(|| mean_b + sur_num / sur_den);
            drop(sur_span);

            let suir_span = cf_obs::trace::span("estimator.suir");
            // --- SUIR': Eq. 12/13, one neighbor row at a time. Phase one
            // touches the *next* neighbor's plane row (safe software
            // prefetch — see `TypedPlanes::prefetch_row`), so its DRAM
            // latency overlaps this neighbor's pair-weight fill and MAC:
            // at q=1000 a u16 row is ~32 cache lines and the M=95 strip
            // scatters across most of them, so whole-row touching is
            // right-sized. Phase two fills the pair-weight strip
            // `ss·st·rsqrt(ss² + st²)` — pure mul/add over contiguous
            // memory, so it vectorizes where the `sqrt` + `div` form
            // serializes on the divider unit. Phase three
            // multiply-accumulates the neighbor's dequantized cells read
            // scattered, straight off the plane row: gathering them into
            // a dense block first was measured *slower* — the copy cost
            // as much as the whole reference kernel. Four independent
            // accumulator lanes keep the add chains from serializing.
            scratch.pw.clear();
            scratch.pw.resize(m, 0.0);
            let mut suir_num = 0.0;
            let mut suir_den = 0.0;
            for (t, &(u_t, sim_t)) in top_users.iter().enumerate() {
                if let Some(&(u_next, _)) = top_users.get(t + 1) {
                    planes.prefetch_row(u_next);
                }
                let tt = sim_t * sim_t;
                for ((pw, &ss), &s2) in scratch.pw.iter_mut().zip(sim).zip(sim2) {
                    // Eq. 13 pair weight; `.max(0.0)` plays the role of
                    // the reference kernel's `pw <= 0` skip. `s2 + tt` is
                    // strictly positive (selection keeps only `sim_t > 0`),
                    // so `rsqrt` never sees zero.
                    *pw = (ss * sim_t * rsqrt(s2 + tt)).max(0.0);
                }
                let row = planes.cell_row(u_t);
                let mut num = [0.0f64; 4];
                let mut den = [0.0f64; 4];
                let mut pw4 = scratch.pw.chunks_exact(4);
                let mut ix4 = idx.chunks_exact(4);
                for (p, cx) in (&mut pw4).zip(&mut ix4) {
                    for l in 0..4 {
                        let (w, wr) = dq.pair(row[cx[l] as usize]);
                        num[l] = p[l].mul_add(wr, num[l]);
                        den[l] = p[l].mul_add(w, den[l]);
                    }
                }
                for (p, &c) in pw4.remainder().iter().zip(ix4.remainder()) {
                    let (w, wr) = dq.pair(row[c as usize]);
                    num[0] = p.mul_add(wr, num[0]);
                    den[0] = p.mul_add(w, den[0]);
                }
                suir_num += (num[0] + num[1]) + (num[2] + num[3]);
                suir_den += (den[0] + den[1]) + (den[2] + den[3]);
            }
            let suir = (suir_den > f64::EPSILON).then(|| suir_num / suir_den);
            drop(suir_span);

            (sir, sur, suir, m_used as usize)
        })
    }

    /// Fuses whatever estimators survived sanitization and, when none
    /// did, walks the remaining rungs of the degradation ladder. Both the
    /// fast path and the reference path call this, so they degrade
    /// identically. Returns the sanitized estimators, the (unclamped)
    /// prediction and the rung it came from; an in-range request always
    /// gets a value — the global-mean rung cannot be missing.
    #[allow(clippy::type_complexity)]
    fn fuse_with_ladder(
        &self,
        user: UserId,
        item: ItemId,
        sir: Option<f64>,
        sur: Option<f64>,
        suir: Option<f64>,
    ) -> (Option<f64>, Option<f64>, Option<f64>, f64, DegradeLevel) {
        // A non-finite estimator (corrupt plane cell, injected NaN) must
        // not reach fusion: one NaN term would poison the whole fused
        // value. Drop it — the ladder absorbs the loss.
        fn sanitize(v: Option<f64>) -> Option<f64> {
            match v {
                Some(x) if x.is_finite() => Some(x),
                Some(_) => {
                    cf_obs::counter!("online.degrade.nonfinite_estimator").inc();
                    None
                }
                None => None,
            }
        }
        let (sir, sur, suir) = (sanitize(sir), sanitize(sur), sanitize(suir));
        let available = [sir, sur, suir].iter().flatten().count();

        if let Some(v) = fuse(sir, sur, suir, self.config.lambda, self.config.delta) {
            return (sir, sur, suir, v, DegradeLevel::from_available(available));
        }
        // No estimator at all: step below Eq. 14. The smoothed matrix
        // imputes every cell when smoothing is on (Eq. 7–8); below that,
        // per-user and global means always exist for a non-empty matrix.
        let smoothed_cell = self
            .config
            .use_smoothing
            .then(|| self.smoothed.dense.get(user, item))
            .flatten()
            .filter(|v| v.is_finite());
        if let Some(v) = smoothed_cell {
            return (sir, sur, suir, v, DegradeLevel::ClusterSmoothed);
        }
        let mean_b = self.matrix.user_mean(user);
        if self.matrix.user_count(user) > 0 && mean_b.is_finite() {
            return (sir, sur, suir, mean_b, DegradeLevel::UserMean);
        }
        (
            sir,
            sur,
            suir,
            self.matrix.global_mean(),
            DegradeLevel::GlobalMean,
        )
    }

    /// Runs the full online phase for `(user, item)` and reports every
    /// component. Returns `None` only for out-of-range ids; every
    /// in-range request is served from *some* rung of the degradation
    /// ladder (see [`DegradeLevel`]), bottoming out at the global mean.
    pub fn predict_with_breakdown(
        &self,
        user: UserId,
        item: ItemId,
    ) -> Option<PredictionBreakdown> {
        if user.index() >= self.matrix.num_users() || item.index() >= self.matrix.num_items() {
            // Not a served prediction: excluded from `online.predict_ns`
            // so the latency histogram reflects real serving work.
            cf_obs::counter!("online.no_signal").inc();
            return None;
        }
        // Request-scoped trace: covers the whole serve (neighbor lookup
        // included), head+tail sampled — see cf_obs::trace. When the
        // request is not head-sampled the span() calls below are one TLS
        // flag read each.
        let trace_req = cf_obs::trace::begin_request(user.raw(), item.raw());
        // Neighbor selection happens (and is timed) before the predict
        // span starts: cold selection work lands in `online.select_ns`,
        // not in the serving-latency histogram.
        let top_users = {
            let _lookup = cf_obs::trace::span("neighbor_lookup");
            self.top_k_users(user)
        };
        cf_obs::time_scope!("online.predict_ns");
        let scale = self.matrix.scale();

        let (sir, sur, suir, m_used) = self.local_estimators(user, item, &top_users);
        #[cfg(feature = "faultinject")]
        let sir = sir.map(|v| cf_faultinject::corrupt_f64("online.nan_estimator", v));

        let fuse_span = cf_obs::trace::span("fuse");
        let (sir, sur, suir, fused, level) = self.fuse_with_ladder(user, item, sir, sur, suir);
        drop(fuse_span);
        let used_fallback = level.is_fallback();
        level.record();
        trace_req.finish(cf_obs::trace::Outcome {
            level: level.as_str(),
            fallback: used_fallback,
            k_used: top_users.len() as u32,
            m_used: m_used as u32,
            fused: scale.clamp(fused),
        });

        cf_obs::counter!("online.predictions").inc();
        // `add(0)` still registers the metric, so a snapshot always carries
        // these names even for runs where the event never fires — absent
        // vs zero would be ambiguous to dashboards diffing runs.
        cf_obs::counter!("online.fallback").add(used_fallback as u64);
        cf_obs::counter!("online.estimator.sir").add(sir.is_some() as u64);
        cf_obs::counter!("online.estimator.sur").add(sur.is_some() as u64);
        cf_obs::counter!("online.estimator.suir").add(suir.is_some() as u64);
        cf_obs::histogram!("online.m_used").record(m_used as u64);
        cf_obs::histogram!("online.k_used").record(top_users.len() as u64);

        Some(PredictionBreakdown {
            sir,
            sur,
            suir,
            fused: scale.clamp(fused),
            used_fallback,
            level,
            m_used,
            k_used: top_users.len(),
        })
    }

    /// The pre-fast-path online phase: per-cell loops over the dense
    /// matrix with `is_nan` tests and provenance-bit extraction on every
    /// kernel iteration.
    ///
    /// Kept as the ground truth for the kernel-equivalence property tests
    /// (the fast path must match it within the quantization tolerance
    /// `planes.step() + 1e-9`; availability, `m_used`, and degrade levels
    /// exactly) and as the baseline the
    /// `online_throughput` benchmark measures speedups against. Shares
    /// [`Cfsf::top_k_users`] with the fast path so both paths predict
    /// from the identical local matrix.
    pub fn predict_with_breakdown_ref(
        &self,
        user: UserId,
        item: ItemId,
    ) -> Option<PredictionBreakdown> {
        if user.index() >= self.matrix.num_users() || item.index() >= self.matrix.num_items() {
            return None;
        }
        let scale = self.matrix.scale();
        let eps = self.config.w;

        let similar_items = self.gis.top_m(item, self.config.m);
        let top_users = self.top_k_users(user);

        // --- SIR': the active user's (smoothed) ratings on similar items.
        let row_b = self.dense.row(user);
        let mut sir_num = 0.0;
        let mut sir_den = 0.0;
        let mut m_used = 0usize;
        for &(i_s, sim_s) in similar_items {
            let r = row_b[i_s.index()];
            if r.is_nan() {
                continue;
            }
            let w = smoothing_weight(self.dense.is_original(user, i_s), eps);
            sir_num += w * sim_s * r;
            sir_den += w * sim_s;
            m_used += 1;
        }
        let sir = (sir_den > f64::EPSILON).then(|| sir_num / sir_den);

        // --- SUR': like-minded users' (smoothed) ratings on the active
        // item, mean-centered per user.
        let mean_b = self.matrix.user_mean(user);
        let mut sur_num = 0.0;
        let mut sur_den = 0.0;
        for &(u_t, sim_t) in top_users.iter() {
            let Some(r) = self.dense.get(u_t, item) else {
                continue;
            };
            let w = smoothing_weight(self.dense.is_original(u_t, item), eps);
            sur_num += w * sim_t * (r - self.matrix.user_mean(u_t));
            sur_den += w * sim_t;
        }
        let sur = (sur_den > f64::EPSILON).then(|| mean_b + sur_num / sur_den);

        // --- SUIR': like-minded users' (smoothed) ratings on similar
        // items, weighted by the Eq. 13 pair weight. This double loop *is*
        // the local M × K matrix — O(M·K) work per request.
        let mut suir_num = 0.0;
        let mut suir_den = 0.0;
        for &(u_t, sim_t) in top_users.iter() {
            let row_t = self.dense.row(u_t);
            for &(i_s, sim_s) in similar_items {
                let r = row_t[i_s.index()];
                if r.is_nan() {
                    continue;
                }
                let pw = pair_weight(sim_s, sim_t);
                if pw <= 0.0 {
                    continue;
                }
                let w = smoothing_weight(self.dense.is_original(u_t, i_s), eps);
                suir_num += w * pw * r;
                suir_den += w * pw;
            }
        }
        let suir = (suir_den > f64::EPSILON).then(|| suir_num / suir_den);

        let (sir, sur, suir, fused, level) = self.fuse_with_ladder(user, item, sir, sur, suir);

        Some(PredictionBreakdown {
            sir,
            sur,
            suir,
            fused: scale.clamp(fused),
            used_fallback: level.is_fallback(),
            level,
            m_used,
            k_used: top_users.len(),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::CfsfConfig;
    use cf_data::SyntheticConfig;
    use cf_matrix::Predictor;

    fn model() -> Cfsf {
        let d = SyntheticConfig::small().generate();
        Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
    }

    #[test]
    fn top_k_respects_k_and_positivity() {
        let m = model();
        for u in 0..8usize {
            let top = m.top_k_users(UserId::from(u));
            assert!(top.len() <= m.config().k);
            assert!(top.windows(2).all(|w| w[0].1 >= w[1].1), "sorted desc");
            assert!(top.iter().all(|&(_, s)| s > 0.0));
            assert!(
                top.iter().all(|&(c, _)| c != UserId::from(u)),
                "self excluded"
            );
        }
    }

    #[test]
    fn top_k_cache_returns_same_list() {
        let m = model();
        let a = m.top_k_users(UserId::new(5));
        let b = m.top_k_users(UserId::new(5));
        assert!(Arc::ptr_eq(&a, &b), "second call should hit the cache");
    }

    #[test]
    fn breakdown_components_are_consistent_with_fusion() {
        let m = model();
        let mut checked = 0;
        for u in 0..20usize {
            for i in (0..120usize).step_by(11) {
                let Some(b) = m.predict_with_breakdown(UserId::from(u), ItemId::from(i)) else {
                    continue;
                };
                if b.used_fallback {
                    assert!(b.sir.is_none() && b.sur.is_none() && b.suir.is_none());
                } else {
                    let expect =
                        fuse(b.sir, b.sur, b.suir, m.config().lambda, m.config().delta).unwrap();
                    let clamped = m.matrix().scale().clamp(expect);
                    assert!((b.fused - clamped).abs() < 1e-12);
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "expected plenty of non-fallback predictions");
    }

    #[test]
    fn fast_path_matches_reference_path() {
        let m = model();
        let mut compared = 0;
        for u in 0..20usize {
            for i in (0..120usize).step_by(7) {
                let fast = m.predict_with_breakdown(UserId::from(u), ItemId::from(i));
                let refr = m.predict_with_breakdown_ref(UserId::from(u), ItemId::from(i));
                // Weights dequantize exactly; only the rating carries
                // quantization error (≤ step/2 per cell), and fusion is
                // convex — so step + 1e-9 bounds the fused divergence.
                let tol = m.plane_quant_step() + 1e-9;
                match (fast, refr) {
                    (Some(f), Some(r)) => {
                        assert!((f.fused - r.fused).abs() <= tol, "({u},{i})");
                        assert_eq!(f.m_used, r.m_used, "({u},{i})");
                        assert_eq!(f.used_fallback, r.used_fallback, "({u},{i})");
                        compared += 1;
                    }
                    (None, None) => {}
                    (f, r) => panic!("availability mismatch at ({u},{i}): {f:?} vs {r:?}"),
                }
            }
        }
        assert!(compared > 100);
    }

    #[test]
    fn m_and_k_used_respect_configuration() {
        let m = model();
        for u in 0..10usize {
            for i in 0..10usize {
                if let Some(b) = m.predict_with_breakdown(UserId::from(u), ItemId::from(i)) {
                    assert!(b.m_used <= m.config().m);
                    assert!(b.k_used <= m.config().k);
                }
            }
        }
    }

    #[test]
    fn out_of_range_ids_return_none() {
        let m = model();
        assert!(m.predict(UserId::new(10_000), ItemId::new(0)).is_none());
        assert!(m.predict(UserId::new(0), ItemId::new(10_000)).is_none());
    }

    #[test]
    fn every_in_range_request_is_served_from_some_rung() {
        let m = model();
        for u in 0..80usize {
            for i in (0..120usize).step_by(17) {
                let b = m
                    .predict_with_breakdown(UserId::from(u), ItemId::from(i))
                    .expect("in-range requests always land on a ladder rung");
                assert!(b.fused.is_finite());
                assert!((1.0..=5.0).contains(&b.fused), "({u},{i}) -> {}", b.fused);
            }
        }
    }

    #[test]
    fn reported_level_is_consistent_with_the_breakdown() {
        let m = model();
        for u in 0..30usize {
            for i in (0..120usize).step_by(7) {
                let Some(b) = m.predict_with_breakdown(UserId::from(u), ItemId::from(i)) else {
                    continue;
                };
                let available = [b.sir, b.sur, b.suir].iter().flatten().count();
                assert_eq!(b.used_fallback, b.level.is_fallback(), "({u},{i})");
                match b.level {
                    DegradeLevel::Full => assert_eq!(available, 3),
                    DegradeLevel::PartialFusion => assert_eq!(available, 2),
                    DegradeLevel::SingleEstimator => assert_eq!(available, 1),
                    _ => assert_eq!(available, 0, "({u},{i})"),
                }
            }
        }
    }

    #[test]
    fn ladder_without_smoothing_bottoms_out_at_means_not_none() {
        let d = SyntheticConfig::small().generate();
        let mut cfg = CfsfConfig::small();
        cfg.use_smoothing = false;
        let m = Cfsf::fit(&d.matrix, cfg).unwrap();
        for u in (0..80usize).step_by(5) {
            for i in (0..120usize).step_by(11) {
                let b = m
                    .predict_with_breakdown(UserId::from(u), ItemId::from(i))
                    .expect("ladder serves even without smoothing");
                assert!((1.0..=5.0).contains(&b.fused));
                assert_ne!(
                    b.level,
                    DegradeLevel::ClusterSmoothed,
                    "smoothing is off: the smoothed rung must be skipped"
                );
            }
        }
    }

    #[test]
    fn both_paths_report_the_same_level() {
        let m = model();
        for u in (0..40usize).step_by(3) {
            for i in (0..120usize).step_by(13) {
                let fast = m.predict_with_breakdown(UserId::from(u), ItemId::from(i));
                let refr = m.predict_with_breakdown_ref(UserId::from(u), ItemId::from(i));
                assert_eq!(fast.map(|b| b.level), refr.map(|b| b.level), "({u},{i})");
            }
        }
    }

    #[test]
    fn smoothing_fallback_always_produces_a_value_in_range() {
        let d = SyntheticConfig::small().generate();
        let m = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        // Every in-range pair must produce *some* prediction thanks to the
        // smoothed-matrix fallback.
        for u in (0..80usize).step_by(9) {
            for i in (0..120usize).step_by(13) {
                let r = m
                    .predict(UserId::from(u), ItemId::from(i))
                    .expect("smoothing guarantees a fallback");
                assert!((1.0..=5.0).contains(&r));
            }
        }
    }

    #[test]
    fn fused_prediction_is_convex_in_components() {
        // Eq. 14 is a convex combination, so (before clamping) the fused
        // value must lie within the envelope of the present components.
        let m = model();
        let mut seen = 0;
        for u in 0..30usize {
            for i in 0..40usize {
                let Some(b) = m.predict_with_breakdown(UserId::from(u), ItemId::from(i)) else {
                    continue;
                };
                if b.used_fallback {
                    continue;
                }
                let present: Vec<f64> = [b.sir, b.sur, b.suir].iter().flatten().copied().collect();
                let lo = present.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = present.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let unclamped =
                    fuse(b.sir, b.sur, b.suir, m.config().lambda, m.config().delta).unwrap();
                assert!(
                    unclamped >= lo - 1e-9 && unclamped <= hi + 1e-9,
                    "fused (unclamped) {unclamped} outside envelope [{lo}, {hi}]"
                );
                seen += 1;
            }
        }
        assert!(
            seen > 100,
            "too few non-fallback predictions sampled: {seen}"
        );
    }
}
