//! Drift-aware self-healing serving: a background refresh loop that
//! rebuilds the model when the live traffic stops looking like the data
//! it was fitted on, and publishes each rebuild through an RCU-style
//! **generation cell** so no request ever blocks on (or observes a torn)
//! rebuild.
//!
//! Three pieces:
//!
//! - [`GenCellCore`] — the generation pointer. Readers take an `Arc`
//!   snapshot of the current model plus its generation number in one
//!   consistent pair; a writer publishes a fully built replacement with
//!   one pointer swap. Like the sharded neighbor cache it is written
//!   generically over [`cf_obs::sync::Shim`], so the `cf-analysis`
//!   model checker explores the *same* swap/reader logic production
//!   runs ([`GenCell`] is the `std` instantiation).
//! - [`DriftMonitor`] — the tripwire. Watches windowed online MAE
//!   regression ([`cf_obs::quality`]), rating-distribution shift on the
//!   ingest stream ([`cf_obs::drift`]) and the degradation-ladder
//!   fallback rate, with **hysteresis** (trip high, clear low, N
//!   consecutive tripped windows, post-rebuild cooldown) so a flapping
//!   signal can never cause a rebuild storm.
//! - [`SelfHealingCfsf`] — the loop. Ingests live ratings (dirty-user /
//!   stale-item tracking bounds the incremental rebuild to what
//!   actually changed), and when the monitor trips, rebuilds on a
//!   worker thread — smoothing, incremental GIS patch or full refit —
//!   and publishes the result through the cell. A panicking or failing
//!   rebuild is caught, counted (`refresh.failed`), and leaves the old
//!   generation serving.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cf_cluster::{ICluster, Smoother};
use cf_matrix::{DenseRatings, ItemId, MatrixBuilder, RatingMatrix, UserId};
use cf_obs::sync::{RecoverMutex, Shim, ShimAtomicU64, ShimRwLock, StdShim};

use crate::{Cfsf, CfsfError, RefreshKind};

// --------------------------------------------------------------------------
// Generation cell
// --------------------------------------------------------------------------

/// An RCU-style generation pointer: readers snapshot `Arc<T>` (and the
/// generation number it was published under) without ever blocking on a
/// writer building the next generation; the writer's only critical
/// section is the pointer swap itself.
///
/// Memory ordering: the `Arc` lives behind the shim's reader-writer
/// lock, so the happens-before edge between `publish` and a later
/// `load` is carried by the lock, not by atomic orderings — the
/// generation counter is bumped *inside* the write guard and read
/// *inside* the read guard, which is why [`Self::load_with_generation`]
/// can never observe a torn (model, generation) pair. The standalone
/// [`Self::generation`] read is a relaxed atomic load: monotone, cheap,
/// and allowed to lag a concurrent publish by design (it feeds gauges
/// and staleness probes, not correctness).
///
/// Poison recovery mirrors the sharded cache: the data is an `Arc`
/// snapshot (always internally consistent), so a reader that observes
/// poison recovers the guard, clones, and clears the flag — one
/// panicking holder cannot take serving down.
pub struct GenCellCore<S: Shim, T: Send + Sync + 'static> {
    slot: S::RwLock<Arc<T>>,
    generation: S::AtomicU64,
}

impl<S: Shim, T: Send + Sync + 'static> GenCellCore<S, T> {
    /// A fresh cell serving `initial` as generation 0.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            slot: S::RwLock::new(initial),
            generation: S::AtomicU64::new(0),
        }
    }

    fn recover(&self) -> Arc<T> {
        cf_obs::counter!("refresh.gen_cell.poison_recovered").inc();
        let snapshot = Arc::clone(&*self.slot.write_recover());
        self.slot.clear_poison();
        snapshot
    }

    /// The currently served generation's value. Wait-free for practical
    /// purposes: the read guard is held only for one `Arc` clone.
    pub fn load(&self) -> Arc<T> {
        match self.slot.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(_) => self.recover(),
        }
    }

    /// The served value together with the generation it was published
    /// under, as one consistent pair.
    pub fn load_with_generation(&self) -> (Arc<T>, u64) {
        match self.slot.read() {
            Ok(guard) => (Arc::clone(&guard), self.generation.load(Ordering::Relaxed)),
            Err(_) => {
                let snapshot = self.recover();
                let gen = self.generation.load(Ordering::Relaxed);
                (snapshot, gen)
            }
        }
    }

    /// The current generation number (starts at 0, bumps on every
    /// [`Self::publish`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Publishes `next` as the new serving generation and returns its
    /// generation number. In-flight readers keep their snapshots; new
    /// readers see `next`. The old generation is freed when its last
    /// reader drops its `Arc` — classic RCU reclamation.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let mut guard = self.slot.write_recover();
        // Relaxed is sound here: every generation access is paired with a
        // slot-lock acquisition, and the lock's acquire/release edges
        // order the pair (the gen-swap model checks exactly this).
        let gen = self.generation.load(Ordering::Relaxed) + 1;
        *guard = next;
        self.generation.store(gen, Ordering::Relaxed);
        self.slot.clear_poison();
        gen
    }

    /// Instrumentation for tests and the model checker: poison the slot
    /// as a panicking writer would.
    pub fn poison_slot(&self) {
        self.slot.poison();
    }

    /// Whether the slot is currently poisoned (before any reader ran the
    /// recovery protocol).
    pub fn is_poisoned(&self) -> bool {
        self.slot.is_poisoned()
    }
}

/// The production generation cell: [`GenCellCore`] over plain `std`
/// primitives.
pub type GenCell<T> = GenCellCore<StdShim, T>;

// --------------------------------------------------------------------------
// Drift detection
// --------------------------------------------------------------------------

/// Thresholds and pacing for the drift detector. Every signal has a
/// **trip** threshold and a lower **clear** threshold (hysteresis): the
/// tripped-streak only grows while a signal is above trip, and only
/// resets once *all* signals fall below their clear thresholds, so a
/// signal oscillating inside the band cannot flap the detector.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Trip when windowed MAE exceeds its baseline by this many per
    /// mille (relative regression; 200 = 20% worse).
    pub mae_trip_pm: i64,
    /// The MAE signal clears below this regression (must be ≤ trip).
    pub mae_clear_pm: i64,
    /// Trip when the ingest-stream rating histogram is this far (total
    /// variation, per mille) from the training distribution.
    pub hist_trip_pm: i64,
    /// The distribution signal clears below this (must be ≤ trip).
    pub hist_clear_pm: i64,
    /// Trip when the degradation ladder serves this per-mille of
    /// requests from its fallback region.
    pub fallback_trip_pm: i64,
    /// The fallback-rate signal clears below this (must be ≤ trip).
    pub fallback_clear_pm: i64,
    /// Consecutive tripped evaluations required before a rebuild is
    /// triggered (debounces one-window spikes).
    pub trip_windows: u32,
    /// Minimum time between rebuilds. Even with thresholds at the
    /// floor, rebuilds cannot come closer together than this.
    pub cooldown: Duration,
    /// Observations (MAE window + ingest window) required before a
    /// signal counts — a three-sample window proves nothing.
    pub min_observations: usize,
    /// Escalate the rebuild from incremental to a full refit once the
    /// merged churn exceeds this fraction of the matrix's ratings
    /// (mirrors [`crate::IncrementalCfsf`]).
    pub full_refit_fraction: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            mae_trip_pm: 200,
            mae_clear_pm: 100,
            hist_trip_pm: 300,
            hist_clear_pm: 150,
            fallback_trip_pm: 500,
            fallback_clear_pm: 250,
            trip_windows: 3,
            cooldown: Duration::from_secs(30),
            min_observations: 32,
            full_refit_fraction: 0.10,
        }
    }
}

impl DriftConfig {
    /// A hair-trigger profile for demos, chaos drills and tests: every
    /// threshold at its floor, one tripped window suffices, and only the
    /// cooldown stands between consecutive rebuilds.
    pub fn sensitive() -> Self {
        Self {
            mae_trip_pm: 0,
            mae_clear_pm: 0,
            hist_trip_pm: 0,
            hist_clear_pm: 0,
            fallback_trip_pm: 0,
            fallback_clear_pm: 0,
            trip_windows: 1,
            cooldown: Duration::from_millis(200),
            min_observations: 1,
            full_refit_fraction: 0.10,
        }
    }

    /// Rejects threshold bands that would invert the hysteresis.
    pub fn validate(&self) -> Result<(), CfsfError> {
        let bands = [
            ("mae", self.mae_trip_pm, self.mae_clear_pm),
            ("hist", self.hist_trip_pm, self.hist_clear_pm),
            ("fallback", self.fallback_trip_pm, self.fallback_clear_pm),
        ];
        for (name, trip, clear) in bands {
            if clear > trip || trip < 0 || clear < 0 {
                return Err(CfsfError::InvalidParameter {
                    name: "drift",
                    message: format!(
                        "{name} thresholds need 0 <= clear <= trip ({clear} > {trip})"
                    ),
                });
            }
        }
        if self.trip_windows == 0 {
            return Err(CfsfError::InvalidParameter {
                name: "drift",
                message: "trip_windows must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.full_refit_fraction) {
            return Err(CfsfError::InvalidParameter {
                name: "drift",
                message: format!(
                    "full_refit_fraction {} outside [0, 1]",
                    self.full_refit_fraction
                ),
            });
        }
        Ok(())
    }
}

/// Where the detector's state machine currently stands. Exposed on
/// `/stats.json` as the `drift.state` gauge (the discriminant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftState {
    /// All signals below their clear thresholds (or not yet meaningful).
    Healthy = 0,
    /// At least one signal above trip; streak building toward a rebuild.
    Drifting = 1,
    /// A rebuild worker is in flight.
    Rebuilding = 2,
    /// A rebuild just finished (or failed); triggers are suppressed
    /// until the cooldown elapses.
    Cooldown = 3,
}

/// One evaluation's raw signals (per mille), for logs and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftSignals {
    /// Relative windowed-MAE regression over baseline; `None` before a
    /// baseline exists.
    pub mae_regression_pm: Option<i64>,
    /// Ingest-histogram distance from the training distribution.
    pub hist_distance_pm: Option<i64>,
    /// Degradation-ladder fallback serve rate.
    pub fallback_pm: Option<i64>,
}

/// The hysteresis state machine between the sensors and the rebuild
/// worker. Not a sensor itself: it reads the gauges [`cf_obs::quality`]
/// and [`cf_obs::drift`] maintain and decides *whether now is the time*.
pub struct DriftMonitor {
    cfg: DriftConfig,
    state: DriftState,
    baseline_mae: Option<f64>,
    tripped_streak: u32,
    cooldown_until: Option<Instant>,
    trips: u64,
}

impl DriftMonitor {
    /// A fresh monitor in [`DriftState::Healthy`].
    pub fn new(cfg: DriftConfig) -> Self {
        let monitor = Self {
            cfg,
            state: DriftState::Healthy,
            baseline_mae: None,
            tripped_streak: 0,
            cooldown_until: None,
            trips: 0,
        };
        monitor.publish_state();
        monitor
    }

    /// Current state-machine position.
    pub fn state(&self) -> DriftState {
        self.state
    }

    /// Rebuilds triggered so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    fn publish_state(&self) {
        cf_obs::gauge!("drift.state").set(self.state as i64);
    }

    /// Reads the raw signals off the global registry. The MAE baseline
    /// is captured lazily: the first full-enough window after a publish
    /// becomes the generation's "normal".
    fn read_signals(&mut self) -> DriftSignals {
        let mut signals = DriftSignals::default();
        if cf_obs::quality::window_len() >= self.cfg.min_observations {
            if let Some(mae) = cf_obs::quality::window_mae() {
                match self.baseline_mae {
                    None => self.baseline_mae = Some(mae.max(f64::MIN_POSITIVE)),
                    Some(base) => {
                        let pm = (((mae / base) - 1.0) * 1000.0).round().max(0.0) as i64;
                        signals.mae_regression_pm = Some(pm);
                        cf_obs::gauge!("drift.mae_regression_pm").set(pm);
                    }
                }
            }
        }
        if cf_obs::drift::window_len() >= self.cfg.min_observations {
            signals.hist_distance_pm = cf_obs::drift::hist_distance_pm();
        }
        cf_obs::quality::refresh_derived_gauges();
        let fallback = cf_obs::global().gauge("online.degrade.fallback_pm").get();
        signals.fallback_pm = Some(fallback);
        signals
    }

    /// One detector tick. Returns `true` when a rebuild should be
    /// launched *now*; the caller must then report back through
    /// [`Self::note_rebuild_started`] / [`Self::note_rebuild_finished`].
    pub fn evaluate(&mut self) -> bool {
        if self.state == DriftState::Rebuilding {
            return false;
        }
        if let Some(until) = self.cooldown_until {
            if Instant::now() < until {
                self.state = DriftState::Cooldown;
                self.publish_state();
                return false;
            }
            self.cooldown_until = None;
        }
        let signals = self.read_signals();
        let above_trip = signals
            .mae_regression_pm
            .is_some_and(|v| v >= self.cfg.mae_trip_pm)
            || signals
                .hist_distance_pm
                .is_some_and(|v| v >= self.cfg.hist_trip_pm)
            || signals
                .fallback_pm
                .is_some_and(|v| v >= self.cfg.fallback_trip_pm);
        let below_clear = signals
            .mae_regression_pm
            .is_none_or(|v| v <= self.cfg.mae_clear_pm)
            && signals
                .hist_distance_pm
                .is_none_or(|v| v <= self.cfg.hist_clear_pm)
            && signals
                .fallback_pm
                .is_none_or(|v| v <= self.cfg.fallback_clear_pm);

        if above_trip {
            self.tripped_streak += 1;
            self.state = DriftState::Drifting;
        } else if below_clear {
            // Only a full return below the clear band resets the streak —
            // the hysteresis that keeps an oscillating signal from
            // flapping the detector.
            self.tripped_streak = 0;
            self.state = DriftState::Healthy;
        }
        self.publish_state();
        if self.tripped_streak >= self.cfg.trip_windows {
            self.trips += 1;
            cf_obs::counter!("drift.trips").inc();
            cf_obs::trace::note("drift.tripped");
            return true;
        }
        false
    }

    /// The caller launched a rebuild: suppress further triggers.
    pub fn note_rebuild_started(&mut self) {
        self.state = DriftState::Rebuilding;
        self.tripped_streak = 0;
        self.publish_state();
    }

    /// The rebuild finished (successfully or not): enter the cooldown.
    /// On success the MAE baseline is dropped — the next full window
    /// against the *new* generation becomes the new normal.
    pub fn note_rebuild_finished(&mut self, published: bool) {
        if published {
            self.baseline_mae = None;
        }
        self.state = DriftState::Cooldown;
        self.cooldown_until = Some(Instant::now() + self.cfg.cooldown);
        self.publish_state();
    }
}

// --------------------------------------------------------------------------
// Self-healing serving wrapper
// --------------------------------------------------------------------------

/// Pending live ratings and the dirty-set bookkeeping that bounds an
/// incremental rebuild to what actually changed.
struct Ingest {
    pending: Vec<(UserId, ItemId, f64)>,
    stale_items: BTreeSet<ItemId>,
    dirty_users: BTreeSet<UserId>,
    churn_since_full: usize,
}

struct Shared {
    cell: Arc<GenCell<Cfsf>>,
    ingest: RecoverMutex<Ingest>,
    monitor: RecoverMutex<DriftMonitor>,
    cfg: DriftConfig,
    /// A rebuild worker is in flight (authoritative single-flight guard).
    busy: AtomicBool,
}

/// Clears the in-flight flag even if the rebuild path panics.
struct BusyGuard<'a>(&'a AtomicBool);

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        cf_obs::gauge!("refresh.in_flight").set(0);
        self.0.store(false, Ordering::Release);
    }
}

/// What one rebuild pass did (the background worker records the same
/// fields into counters/gauges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildReport {
    /// Which rebuild path ran.
    pub kind: RefreshKind,
    /// Ratings merged into the new generation.
    pub merged: usize,
    /// Distinct users whose ratings changed (drove the partial/full
    /// decision).
    pub dirty_users: usize,
    /// The generation number the rebuild published.
    pub generation: u64,
}

/// A [`Cfsf`] that keeps itself fresh: ingests live ratings, watches the
/// drift signals, and — when the [`DriftMonitor`] trips — rebuilds on a
/// background thread and publishes through a [`GenCell`], so serving
/// never pauses and a failed rebuild leaves the old generation up.
pub struct SelfHealingCfsf {
    shared: Arc<Shared>,
    worker: RecoverMutex<Option<std::thread::JoinHandle<()>>>,
}

impl SelfHealingCfsf {
    /// Wraps a fitted model as generation 0 and installs its training
    /// distribution as the drift baseline.
    pub fn new(model: Cfsf, cfg: DriftConfig) -> Result<Self, CfsfError> {
        cfg.validate()?;
        install_baseline(&model);
        // Register the refresh counters up front so a snapshot carries
        // explicit zeros — absent vs zero matters to the chaos gates.
        cf_obs::counter!("refresh.started").add(0);
        cf_obs::counter!("refresh.completed").add(0);
        cf_obs::counter!("refresh.failed").add(0);
        cf_obs::counter!("refresh.panicked").add(0);
        cf_obs::gauge!("refresh.generation").set(0);
        cf_obs::gauge!("refresh.in_flight").set(0);
        Ok(Self {
            shared: Arc::new(Shared {
                cell: Arc::new(GenCell::new(Arc::new(model))),
                ingest: RecoverMutex::new(Ingest {
                    pending: Vec::new(),
                    stale_items: BTreeSet::new(),
                    dirty_users: BTreeSet::new(),
                    churn_since_full: 0,
                }),
                monitor: RecoverMutex::new(DriftMonitor::new(cfg.clone())),
                cfg,
                busy: AtomicBool::new(false),
            }),
            worker: RecoverMutex::new(None),
        })
    }

    /// The generation cell, shareable with serving (the shard server's
    /// model handle loads from exactly this cell).
    pub fn cell(&self) -> Arc<GenCell<Cfsf>> {
        Arc::clone(&self.shared.cell)
    }

    /// Snapshot of the currently served generation.
    pub fn model(&self) -> Arc<Cfsf> {
        self.shared.cell.load()
    }

    /// The currently served generation number.
    pub fn generation(&self) -> u64 {
        self.shared.cell.generation()
    }

    /// Current drift state-machine position.
    pub fn drift_state(&self) -> DriftState {
        self.shared.monitor.lock().state()
    }

    /// Ratings waiting to be merged by the next rebuild.
    pub fn pending(&self) -> usize {
        self.shared.ingest.lock().pending.len()
    }

    /// Ingests one live rating: validated against the current
    /// generation, fed to the quality and drift sensors, queued for the
    /// next rebuild — and the drift detector gets one evaluation tick,
    /// which may launch a background rebuild.
    pub fn add_rating(&self, user: UserId, item: ItemId, rating: f64) -> Result<(), CfsfError> {
        let model = self.shared.cell.load();
        let m = model.matrix();
        if user.index() >= m.num_users() || item.index() >= m.num_items() {
            return Err(CfsfError::InvalidParameter {
                name: "rating",
                message: format!("({user:?}, {item:?}) is outside the matrix"),
            });
        }
        if !m.scale().contains(rating) || !rating.is_finite() {
            return Err(CfsfError::InvalidParameter {
                name: "rating",
                message: format!("{rating} is off the {:?} scale", m.scale()),
            });
        }
        {
            let mut ingest = self.shared.ingest.lock();
            if m.get(user, item).is_some()
                || ingest
                    .pending
                    .iter()
                    .any(|&(u, i, _)| u == user && i == item)
            {
                return Err(CfsfError::InvalidParameter {
                    name: "rating",
                    message: format!("cell ({user:?}, {item:?}) is already rated"),
                });
            }
            ingest.pending.push((user, item, rating));
            ingest.stale_items.insert(item);
            ingest.dirty_users.insert(user);
        }
        if let Some(pred) = cf_matrix::Predictor::predict(&*model, user, item) {
            cf_obs::quality::observe_prediction_error((pred - rating).abs());
        }
        cf_obs::drift::record_rating(rating);
        self.tick();
        Ok(())
    }

    /// One drift-detector evaluation; launches a background rebuild when
    /// it trips. Serving paths may call this on any cadence — it never
    /// blocks on a rebuild.
    pub fn tick(&self) {
        if self.shared.monitor.lock().evaluate() {
            self.spawn_rebuild();
        }
    }

    /// Forces a background rebuild regardless of drift (operator
    /// override, chaos drills). Returns `false` when one is already in
    /// flight.
    pub fn trigger(&self) -> bool {
        self.spawn_rebuild()
    }

    /// Runs one rebuild synchronously on the caller's thread (tests, the
    /// CLI demo). Publishes through the same cell as the background
    /// path.
    pub fn refresh_now(&self) -> Result<RebuildReport, CfsfError> {
        if self.shared.busy.swap(true, Ordering::AcqRel) {
            return Err(CfsfError::RefreshFailed {
                message: "a rebuild is already in flight".into(),
            });
        }
        let _guard = BusyGuard(&self.shared.busy);
        cf_obs::gauge!("refresh.in_flight").set(1);
        self.shared.monitor.lock().note_rebuild_started();
        run_rebuild(&self.shared)
    }

    fn spawn_rebuild(&self) -> bool {
        if self.shared.busy.swap(true, Ordering::AcqRel) {
            return false;
        }
        cf_obs::gauge!("refresh.in_flight").set(1);
        self.shared.monitor.lock().note_rebuild_started();
        let shared = Arc::clone(&self.shared);
        let spawned = std::thread::Builder::new()
            .name("cfsf-refresh".into())
            .spawn(move || {
                let _guard = BusyGuard(&shared.busy);
                let _ = run_rebuild(&shared);
            });
        match spawned {
            Ok(handle) => {
                let mut slot = self.worker.lock();
                // Reap the previous worker (already finished: `busy` was
                // clear) so handles don't accumulate.
                if let Some(old) = slot.take() {
                    let _ = old.join();
                }
                *slot = Some(handle);
                true
            }
            Err(_) => {
                // Could not even spawn: count it as a failed refresh and
                // leave the old generation serving.
                cf_obs::counter!("refresh.failed").inc();
                cf_obs::gauge!("refresh.in_flight").set(0);
                self.shared.busy.store(false, Ordering::Release);
                self.shared.monitor.lock().note_rebuild_finished(false);
                false
            }
        }
    }

    /// Blocks until no background rebuild is in flight (tests, shutdown).
    pub fn wait_idle(&self) {
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        while self.shared.busy.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Drop for SelfHealingCfsf {
    fn drop(&mut self) {
        self.wait_idle();
    }
}

/// Seeds the drift sensors with the model's training distribution.
fn install_baseline(model: &Cfsf) {
    let m = model.matrix();
    let scale = m.scale();
    cf_obs::drift::set_baseline(m.triplets().map(|(_, _, r)| r), scale.min, scale.max);
}

/// The rebuild pass: snapshot the pending ratings, build a complete new
/// [`Cfsf`] off to the side, publish it through the cell. Runs on the
/// worker thread (or inline for [`SelfHealingCfsf::refresh_now`]); the
/// served generation is untouched until the final `publish`, and any
/// panic is caught here — counted, traced, old generation keeps serving.
fn run_rebuild(shared: &Shared) -> Result<RebuildReport, CfsfError> {
    cf_obs::counter!("refresh.started").inc();
    cf_obs::trace::note("refresh.rebuild_started");
    let base = shared.cell.load();
    // Snapshot and drain the ingest state; on failure it is restored so
    // the ratings are not lost and the rebuild can be retried.
    let (pending, stale_items, dirty_users, churn_since_full) = {
        let mut ingest = shared.ingest.lock();
        (
            std::mem::take(&mut ingest.pending),
            std::mem::take(&mut ingest.stale_items),
            std::mem::take(&mut ingest.dirty_users),
            ingest.churn_since_full,
        )
    };

    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cf_obs::time_scope!("refresh.rebuild_ns");
        build_generation(&base, &shared.cfg, &pending, &stale_items, churn_since_full)
    }));

    match built {
        Ok(Ok((model, kind))) => {
            let generation = shared.cell.publish(Arc::new(model));
            {
                let mut ingest = shared.ingest.lock();
                ingest.churn_since_full = match kind {
                    RefreshKind::Full => 0,
                    RefreshKind::Partial => churn_since_full + pending.len(),
                };
                // Ratings ingested *during* the rebuild were validated
                // against the old generation; drop any the new matrix now
                // covers.
                let published = shared.cell.load();
                let m = published.matrix();
                ingest.pending.retain(|&(u, i, _)| m.get(u, i).is_none());
            }
            install_baseline(&shared.cell.load());
            cf_obs::quality::clear_window();
            cf_obs::counter!("refresh.completed").inc();
            cf_obs::gauge!("refresh.generation").set(generation as i64);
            cf_obs::trace::note("refresh.generation_published");
            shared.monitor.lock().note_rebuild_finished(true);
            Ok(RebuildReport {
                kind,
                merged: pending.len(),
                dirty_users: dirty_users.len(),
                generation,
            })
        }
        other => {
            // Failed or panicked: restore the snapshot (new arrivals
            // stay, the snapshot slots back in front) and keep serving
            // the old generation.
            {
                let snapshot_cells: BTreeSet<(UserId, ItemId)> =
                    pending.iter().map(|&(u, i, _)| (u, i)).collect();
                let mut ingest = shared.ingest.lock();
                let newer = std::mem::take(&mut ingest.pending);
                ingest.pending = pending;
                // A rating ingested during the failed rebuild may address
                // a cell the snapshot already covers (the snapshot had
                // left the pending list); keep the snapshot's value.
                ingest.pending.extend(
                    newer
                        .into_iter()
                        .filter(|&(u, i, _)| !snapshot_cells.contains(&(u, i))),
                );
                ingest.stale_items.extend(stale_items.iter().copied());
                ingest.dirty_users.extend(dirty_users.iter().copied());
            }
            cf_obs::counter!("refresh.failed").inc();
            shared.monitor.lock().note_rebuild_finished(false);
            match other {
                Ok(Err(e)) => {
                    cf_obs::trace::note("refresh.rebuild_failed");
                    Err(e)
                }
                _ => {
                    cf_obs::counter!("refresh.panicked").inc();
                    cf_obs::trace::note("refresh.worker_panicked");
                    Err(CfsfError::RefreshFailed {
                        message: "rebuild worker panicked; old generation still serving".into(),
                    })
                }
            }
        }
    }
}

/// Builds the next generation completely off to the side. Incremental
/// path mirrors [`crate::IncrementalCfsf`]'s staged partial refresh —
/// GIS rows are rebuilt only for the stale items (O(changed users), via
/// the dirty tracking) — escalating to a full refit on heavy churn.
fn build_generation(
    base: &Cfsf,
    cfg: &DriftConfig,
    pending: &[(UserId, ItemId, f64)],
    stale_items: &BTreeSet<ItemId>,
    churn_since_full: usize,
) -> Result<(Cfsf, RefreshKind), CfsfError> {
    #[cfg(feature = "faultinject")]
    {
        cf_faultinject::maybe_stall("refresh.worker_stall");
        cf_faultinject::maybe_panic("refresh.worker_panic");
    }

    let merged = merged_matrix(base, pending)?;
    let would_be_churn = churn_since_full + pending.len();
    let escalate = would_be_churn as f64 > cfg.full_refit_fraction * merged.num_ratings() as f64;

    let (model, kind) = if escalate || pending.is_empty() {
        // An empty rebuild (drift tripped with nothing pending — e.g. a
        // pure fallback-rate trip) refits on the same data: K-means may
        // land a better local optimum, and the baseline resets.
        (Cfsf::fit(&merged, base.config.clone())?, RefreshKind::Full)
    } else {
        let items: Vec<ItemId> = stale_items.iter().copied().collect();
        let mut gis_config = base.config.gis.clone();
        if let Some(cap) = gis_config.max_neighbors {
            gis_config.max_neighbors = Some(cap.max(base.config.m));
        }
        gis_config.threads = gis_config.threads.or(base.config.threads);
        let mut gis = base.gis.clone();
        gis.rebuild_items(&merged, &items, &gis_config);

        let smoothed = Smoother::smooth(&merged, &base.clusters, base.config.threads);
        let icluster = ICluster::build(&merged, &smoothed, base.config.threads);
        let dense = if base.config.use_smoothing {
            smoothed.dense.clone()
        } else {
            DenseRatings::from_sparse(&merged)
        };
        let planes = cf_matrix::WeightPlanes::from_dense_with(
            &dense,
            base.config.w,
            base.config.plane_precision,
        );
        let strips = crate::strips::ItemStrips::build(&gis, base.config.m);
        let model = Cfsf {
            config: base.config.clone(),
            matrix: merged,
            gis,
            clusters: base.clusters.clone(),
            smoothed,
            icluster,
            dense,
            planes,
            strips,
            neighbor_cache: crate::cache::ShardedCache::new(crate::cache::DEFAULT_CAPACITY),
        };
        model.publish_footprint();
        (model, RefreshKind::Partial)
    };

    #[cfg(feature = "faultinject")]
    if cf_faultinject::fires("refresh.fail_before_commit") {
        return Err(CfsfError::RefreshFailed {
            message: "injected fault before generation publish".into(),
        });
    }
    Ok((model, kind))
}

fn merged_matrix(
    base: &Cfsf,
    pending: &[(UserId, ItemId, f64)],
) -> Result<RatingMatrix, CfsfError> {
    let old = base.matrix();
    let mut b = MatrixBuilder::with_dims(old.num_users(), old.num_items()).scale(old.scale());
    b.reserve(old.num_ratings() + pending.len());
    for (u, i, r) in old.triplets() {
        b.push(u, i, r);
    }
    for &(u, i, r) in pending {
        b.push(u, i, r);
    }
    b.build().map_err(|e| CfsfError::RefreshFailed {
        message: format!("merged matrix failed validation: {e}"),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::CfsfConfig;
    use cf_data::SyntheticConfig;
    use cf_matrix::Predictor;

    /// The drift/quality windows are process-global; tests that assert
    /// on them serialize here so parallel test threads cannot interleave
    /// observations.
    fn windows_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn fitted() -> (cf_data::Dataset, Cfsf) {
        let d = SyntheticConfig::small().generate();
        let m = Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap();
        (d, m)
    }

    fn unrated_cell(m: &RatingMatrix, from: u32) -> (UserId, ItemId) {
        for u in from..m.num_users() as u32 {
            for i in 0..m.num_items() as u32 {
                if m.get(UserId::new(u), ItemId::new(i)).is_none() {
                    return (UserId::new(u), ItemId::new(i));
                }
            }
        }
        panic!("matrix is dense");
    }

    #[test]
    fn gen_cell_pairs_value_and_generation() {
        let cell: GenCell<u64> = GenCell::new(Arc::new(0));
        assert_eq!(cell.generation(), 0);
        assert_eq!(*cell.load(), 0);
        for k in 1..=5u64 {
            assert_eq!(cell.publish(Arc::new(k)), k);
            let (v, generation) = cell.load_with_generation();
            assert_eq!(*v, k);
            assert_eq!(generation, k);
        }
    }

    #[test]
    fn gen_cell_recovers_from_poison() {
        let cell: GenCell<u64> = GenCell::new(Arc::new(7));
        cell.poison_slot();
        assert!(cell.is_poisoned());
        assert_eq!(*cell.load(), 7, "reader recovers the snapshot");
        assert!(!cell.is_poisoned(), "recovery clears the flag");
        assert_eq!(cell.publish(Arc::new(8)), 1);
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn old_generation_outlives_the_swap() {
        let cell: GenCell<u64> = GenCell::new(Arc::new(1));
        let held = cell.load();
        cell.publish(Arc::new(2));
        assert_eq!(*held, 1, "in-flight reader keeps its snapshot");
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn drift_config_rejects_inverted_bands() {
        let mut cfg = DriftConfig::default();
        cfg.mae_clear_pm = cfg.mae_trip_pm + 1;
        assert!(cfg.validate().is_err());
        assert!(DriftConfig::default().validate().is_ok());
        assert!(DriftConfig::sensitive().validate().is_ok());
        let cfg = DriftConfig {
            trip_windows: 0,
            ..DriftConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn monitor_needs_consecutive_tripped_windows_and_cooldown() {
        let _serial = windows_lock();
        cf_obs::quality::clear_window();
        cf_obs::drift::clear();
        // Distribution fully shifted: baseline mid-scale, stream at max.
        cf_obs::drift::set_baseline(std::iter::repeat_n(3.0, 64), 1.0, 5.0);
        for _ in 0..8 {
            cf_obs::drift::record_rating(5.0);
        }
        let cfg = DriftConfig {
            trip_windows: 3,
            min_observations: 4,
            cooldown: Duration::from_secs(3600),
            // Only the histogram signal participates in this test; other
            // tests in this binary feed the shared MAE window, so park
            // the MAE and fallback bands where they cannot trip.
            mae_trip_pm: i64::MAX,
            mae_clear_pm: i64::MAX,
            fallback_trip_pm: 1001,
            fallback_clear_pm: 1001,
            ..DriftConfig::default()
        };
        let mut m = DriftMonitor::new(cfg);
        assert!(!m.evaluate(), "window 1 of 3");
        assert!(!m.evaluate(), "window 2 of 3");
        assert_eq!(m.state(), DriftState::Drifting);
        assert!(m.evaluate(), "window 3 trips");
        m.note_rebuild_started();
        assert!(!m.evaluate(), "no trigger while rebuilding");
        m.note_rebuild_finished(true);
        assert_eq!(m.state(), DriftState::Cooldown);
        assert!(!m.evaluate(), "cooldown suppresses the still-high signal");
        cf_obs::drift::clear();
        cf_obs::quality::clear_window();
    }

    #[test]
    fn monitor_hysteresis_holds_streak_inside_the_band() {
        let _serial = windows_lock();
        cf_obs::quality::clear_window();
        cf_obs::drift::clear();
        cf_obs::drift::set_baseline(std::iter::repeat_n(3.0, 64), 1.0, 5.0);
        let cfg = DriftConfig {
            hist_trip_pm: 900,
            hist_clear_pm: 100,
            trip_windows: 2,
            min_observations: 4,
            cooldown: Duration::from_secs(3600),
            mae_trip_pm: i64::MAX,
            mae_clear_pm: i64::MAX,
            fallback_trip_pm: 1001,
            fallback_clear_pm: 1001,
            ..DriftConfig::default()
        };
        let mut m = DriftMonitor::new(cfg);
        // Fully shifted: above trip. One window of streak.
        for _ in 0..8 {
            cf_obs::drift::record_rating(5.0);
        }
        assert!(!m.evaluate());
        assert_eq!(m.state(), DriftState::Drifting);
        // Drop the distance inside the band (between clear and trip):
        // half the window back at baseline ≈ 500 pm. The streak must
        // hold — neither growing past the trip count nor resetting.
        for _ in 0..8 {
            cf_obs::drift::record_rating(3.0);
        }
        assert!(!m.evaluate(), "inside the band: no trip");
        assert_eq!(m.state(), DriftState::Drifting, "…and no reset either");
        // Back above trip: the held streak completes and trips.
        for _ in 0..64 {
            cf_obs::drift::record_rating(5.0);
        }
        assert!(m.evaluate(), "streak held through the band completes");
        cf_obs::drift::clear();
        cf_obs::quality::clear_window();
    }

    #[test]
    fn add_rating_validates_and_queues() {
        let (d, model) = fitted();
        let healing = SelfHealingCfsf::new(
            model,
            DriftConfig {
                cooldown: Duration::from_secs(3600),
                ..DriftConfig::default()
            },
        )
        .unwrap();
        let (u, i) = unrated_cell(&d.matrix, 0);
        healing.add_rating(u, i, 4.0).unwrap();
        assert!(healing.add_rating(u, i, 4.0).is_err(), "duplicate pending");
        let (eu, ei, _) = d.matrix.triplets().next().unwrap();
        assert!(healing.add_rating(eu, ei, 3.0).is_err(), "already rated");
        assert!(healing
            .add_rating(UserId::new(99_999), ItemId::new(0), 3.0)
            .is_err());
        assert!(healing.add_rating(u, ItemId::new(1), 99.0).is_err());
        assert_eq!(healing.pending(), 1);
    }

    #[test]
    fn refresh_now_publishes_a_new_generation_with_merged_ratings() {
        let (d, model) = fitted();
        let healing = SelfHealingCfsf::new(
            model,
            DriftConfig {
                cooldown: Duration::from_millis(1),
                ..DriftConfig::default()
            },
        )
        .unwrap();
        let before = healing.generation();
        let (u, i) = unrated_cell(&d.matrix, 3);
        healing.add_rating(u, i, 5.0).unwrap();
        let report = healing.refresh_now().unwrap();
        assert_eq!(report.merged, 1);
        assert_eq!(report.dirty_users, 1);
        assert_eq!(report.generation, before + 1);
        assert_eq!(healing.generation(), before + 1);
        assert_eq!(healing.pending(), 0);
        let m = healing.model();
        assert_eq!(m.matrix().get(u, i), Some(5.0));
        assert!(m.predict(u, ItemId::new(0)).is_some());
    }

    #[test]
    fn background_trigger_swaps_without_blocking_readers() {
        let (d, model) = fitted();
        let healing = SelfHealingCfsf::new(
            model,
            DriftConfig {
                cooldown: Duration::from_millis(1),
                ..DriftConfig::default()
            },
        )
        .unwrap();
        let (u, i) = unrated_cell(&d.matrix, 5);
        healing.add_rating(u, i, 5.0).unwrap();
        let cell = healing.cell();
        assert!(healing.trigger());
        // Readers keep being served while the worker rebuilds.
        let mut served = 0usize;
        while healing.generation() == 0 {
            let m = cell.load();
            let _ = m.predict(UserId::new(0), ItemId::new(0));
            served += 1;
            if served > 5_000_000 {
                break;
            }
        }
        healing.wait_idle();
        assert_eq!(healing.generation(), 1, "rebuild must have published");
        assert_eq!(healing.model().matrix().get(u, i), Some(5.0));
    }

    #[test]
    fn second_trigger_is_refused_while_one_is_in_flight() {
        let (_, model) = fitted();
        let healing = SelfHealingCfsf::new(model, DriftConfig::default()).unwrap();
        assert!(healing.trigger());
        // Either refused outright (worker still running) or the first
        // one already finished; both are storm-free.
        let second = healing.trigger();
        healing.wait_idle();
        if second {
            healing.wait_idle();
            assert!(healing.generation() <= 2);
        }
        assert!(cf_obs::counter!("refresh.completed").get() >= 1);
    }

    #[test]
    fn drift_storm_at_floor_thresholds_is_rate_limited() {
        let _serial = windows_lock();
        let (d, model) = fitted();
        cf_obs::quality::clear_window();
        let cfg = DriftConfig {
            cooldown: Duration::from_secs(3600),
            ..DriftConfig::sensitive()
        };
        let healing = SelfHealingCfsf::new(model, cfg).unwrap();
        let started_before = cf_obs::counter!("refresh.started").get();
        // Hammer the detector: every add ticks it with thresholds at 0.
        let mut from = 0;
        for _ in 0..6 {
            let (u, i) = unrated_cell(&d.matrix, from);
            healing.add_rating(u, i, 5.0).unwrap();
            from = u.raw() + 1;
        }
        healing.wait_idle();
        let launched = cf_obs::counter!("refresh.started").get() - started_before;
        assert!(
            launched <= 1,
            "cooldown + single-flight must cap the storm, got {launched} rebuilds"
        );
        cf_obs::quality::clear_window();
        cf_obs::drift::clear();
    }
}
