//! Synthetic preference drift: a seeded generator where some users
//! switch taste groups partway through their rating history.
//!
//! The paper conjectures rating dates "may reflect shifts of user
//! preferences" (§VI). To exercise that, this generator gives every user
//! a rating timeline; drifting users draw their early ratings from one
//! group's affinity profile and their late ratings from another's. A
//! time-oblivious algorithm averages the two personalities; a
//! time-decayed one follows the recent one.

use cf_matrix::{ItemId, UserId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use cf_data::NormalSampler;

use crate::TimestampedMatrix;

/// Configuration of the drifting generator.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Number of users.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Latent taste groups.
    pub taste_groups: usize,
    /// Latent item genres.
    pub genres: usize,
    /// Ratings per user (all users rate the same count, spread uniformly
    /// over the timeline).
    pub ratings_per_user: usize,
    /// Fraction of users whose taste group switches mid-timeline.
    pub drift_fraction: f64,
    /// Strength of the group↔genre affinity signal.
    pub affinity_strength: f64,
    /// Observation noise standard deviation.
    pub noise_sd: f64,
    /// Timeline span in "seconds".
    pub time_span: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            num_users: 120,
            num_items: 160,
            taste_groups: 4,
            genres: 6,
            ratings_per_user: 40,
            drift_fraction: 0.5,
            affinity_strength: 1.2,
            noise_sd: 0.4,
            time_span: 1_000_000,
            seed: 42,
        }
    }
}

impl DriftConfig {
    /// Generates the timestamped matrix plus, for testing, the set of
    /// drifted users.
    pub fn generate(&self) -> (TimestampedMatrix, Vec<UserId>) {
        assert!(
            self.ratings_per_user <= self.num_items,
            "too many ratings per user"
        );
        assert!(
            (0.0..=1.0).contains(&self.drift_fraction),
            "fraction in [0,1]"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut normal = NormalSampler::new();

        let affinity: Vec<Vec<f64>> = (0..self.taste_groups)
            .map(|_| {
                (0..self.genres)
                    .map(|_| normal.sample(&mut rng, 0.0, self.affinity_strength))
                    .collect()
            })
            .collect();
        let item_genres: Vec<usize> = (0..self.num_items)
            .map(|_| rng.gen_range(0..self.genres))
            .collect();

        let mut quads = Vec::with_capacity(self.num_users * self.ratings_per_user);
        let mut drifted = Vec::new();
        let mut item_pool: Vec<usize> = (0..self.num_items).collect();
        for u in 0..self.num_users {
            let group_early = rng.gen_range(0..self.taste_groups);
            let drifts = rng.gen::<f64>() < self.drift_fraction && self.taste_groups > 1;
            let group_late = if drifts {
                // a guaranteed-different group
                let mut g = rng.gen_range(0..self.taste_groups - 1);
                if g >= group_early {
                    g += 1;
                }
                g
            } else {
                group_early
            };
            if drifts {
                drifted.push(UserId::from(u));
            }

            item_pool.shuffle(&mut rng);
            let switch_at = self.ratings_per_user / 2;
            for (k, &item) in item_pool.iter().take(self.ratings_per_user).enumerate() {
                // timeline position: k-th rating lands at a jittered slot
                let slot = self.time_span * k as i64 / self.ratings_per_user as i64;
                let jitter =
                    rng.gen_range(0..=(self.time_span / self.ratings_per_user as i64).max(1));
                let t = (slot + jitter).min(self.time_span);
                let group = if k < switch_at {
                    group_early
                } else {
                    group_late
                };
                let signal = 3.0
                    + affinity[group][item_genres[item]]
                    + normal.sample(&mut rng, 0.0, self.noise_sd);
                let rating = signal.round().clamp(1.0, 5.0);
                quads.push((UserId::from(u), ItemId::from(item), rating, t));
            }
        }

        let matrix = TimestampedMatrix::from_quads(quads).expect("generator output is valid");
        (matrix, drifted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let (m, drifted) = DriftConfig::default().generate();
        assert_eq!(m.matrix().num_ratings(), 120 * 40);
        assert!(!drifted.is_empty());
        assert!(drifted.len() < 120);
        assert!(m.t_max() > m.t_min());
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, da) = DriftConfig::default().generate();
        let (b, db) = DriftConfig::default().generate();
        assert_eq!(da, db);
        let ta: Vec<_> = a.matrix().triplets().collect();
        let tb: Vec<_> = b.matrix().triplets().collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn zero_drift_fraction_drifts_nobody() {
        let cfg = DriftConfig {
            drift_fraction: 0.0,
            ..Default::default()
        };
        let (_, drifted) = cfg.generate();
        assert!(drifted.is_empty());
    }

    #[test]
    fn drifted_users_change_their_behaviour_over_time() {
        // For a drifted user, the mean rating per genre in the early half
        // should differ from the late half more than for stable users.
        let cfg = DriftConfig {
            noise_sd: 0.1,
            ..Default::default()
        };
        let (m, drifted) = cfg.generate();
        let mid = (m.t_min() + m.t_max()) / 2;
        let behaviour_shift = |u: UserId| -> f64 {
            let (mut e, mut ec, mut l, mut lc) = (0.0, 0usize, 0.0, 0usize);
            for (_, r, t) in m.user_row_timed(u) {
                if t < mid {
                    e += r;
                    ec += 1;
                } else {
                    l += r;
                    lc += 1;
                }
            }
            if ec == 0 || lc == 0 {
                return 0.0;
            }
            (e / ec as f64 - l / lc as f64).abs()
        };
        let drift_shift: f64 =
            drifted.iter().map(|&u| behaviour_shift(u)).sum::<f64>() / drifted.len() as f64;
        let stable: Vec<UserId> = m
            .matrix()
            .users()
            .filter(|u| !drifted.contains(u))
            .collect();
        let stable_shift: f64 =
            stable.iter().map(|&u| behaviour_shift(u)).sum::<f64>() / stable.len() as f64;
        // Mean-level shift is a crude proxy (genre mix washes some of it
        // out), but drifted users must shift more on average.
        assert!(
            drift_shift > stable_shift,
            "drifted {drift_shift:.3} vs stable {stable_shift:.3}"
        );
    }
}
