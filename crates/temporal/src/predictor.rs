//! Time-decayed user-based CF.

use cf_matrix::{ItemId, Predictor, UserId};

use crate::{Decay, TimestampedMatrix};

/// Which timestamp the similarity decay keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecayMode {
    /// Weight each co-rated term by the age of the **active user's**
    /// rating. Rationale: under preference drift it is the active user's
    /// old ratings that describe an outdated self; a neighbor's old
    /// rating still describes that neighbor (who may be stable). This is
    /// the mode that tracks drifting users.
    ActiveAge,
    /// Weight each co-rated term by the age of the **older of the two**
    /// ratings — the conservative choice: only recent-on-both-sides
    /// agreement counts. Starves the similarity of evidence when
    /// profiles are thin, but is robust when *neighbors* drift too.
    OldestOfPair,
}

/// Configuration of [`TimeAwareSur`].
#[derive(Debug, Clone)]
pub struct TimeAwareSurConfig {
    /// The decay curve.
    pub decay: Decay,
    /// What the similarity decay keys on.
    pub mode: DecayMode,
    /// Additionally decay each neighbor's rating of the active item by
    /// its own age inside the prediction sum. Off by default: a stable
    /// neighbor's old rating of an item is still their opinion of it.
    pub decay_neighbor_ratings: bool,
    /// Optional neighborhood cap (most similar first).
    pub neighborhood: Option<usize>,
}

impl Default for TimeAwareSurConfig {
    fn default() -> Self {
        Self {
            // One tenth of the collection window is a sensible default
            // order of magnitude; tune per dataset.
            decay: Decay::with_half_life(100_000.0),
            mode: DecayMode::ActiveAge,
            decay_neighbor_ratings: false,
            neighborhood: Some(40),
        }
    }
}

/// User-based CF with exponentially time-decayed evidence — the
/// "capture rating dates" extension of §VI applied to the SUR estimator.
///
/// Relative to plain SUR, the user–user similarity weights each co-rated
/// term by a decayed age (see [`DecayMode`]), so the neighborhood is
/// selected by *current* compatibility; optionally the prediction sum
/// decays neighbor ratings too.
#[derive(Debug)]
pub struct TimeAwareSur {
    data: TimestampedMatrix,
    config: TimeAwareSurConfig,
    now: i64,
}

impl TimeAwareSur {
    /// Snapshots the timestamped matrix; "now" is its latest timestamp.
    pub fn fit(data: &TimestampedMatrix, config: TimeAwareSurConfig) -> Self {
        let now = data.t_max();
        Self {
            data: data.clone(),
            config,
            now,
        }
    }

    /// Fits with defaults.
    pub fn fit_default(data: &TimestampedMatrix) -> Self {
        Self::fit(data, TimeAwareSurConfig::default())
    }

    /// Overrides the evaluation instant (e.g. to score mid-history).
    pub fn at(mut self, now: i64) -> Self {
        self.now = now;
        self
    }

    /// Decay-weighted PCC between the active user and a candidate.
    fn decayed_user_pcc(&self, active: UserId, candidate: UserId) -> f64 {
        let m = self.data.matrix();
        let (mean_a, mean_b) = (m.user_mean(active), m.user_mean(candidate));
        let rows_a: Vec<(ItemId, f64, i64)> = self.data.user_row_timed(active).collect();
        let rows_b: Vec<(ItemId, f64, i64)> = self.data.user_row_timed(candidate).collect();
        let (mut x, mut y) = (0usize, 0usize);
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        let mut n = 0usize;
        while x < rows_a.len() && y < rows_b.len() {
            match rows_a[x].0.cmp(&rows_b[y].0) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    let (_, ra, ta) = rows_a[x];
                    let (_, rb, tb) = rows_b[y];
                    let key = match self.config.mode {
                        DecayMode::ActiveAge => ta,
                        DecayMode::OldestOfPair => ta.min(tb),
                    };
                    let w = self.config.decay.weight(key, self.now);
                    let da = ra - mean_a;
                    let db = rb - mean_b;
                    dot += w * da * db;
                    na += w * da * da;
                    nb += w * db * db;
                    n += 1;
                    x += 1;
                    y += 1;
                }
            }
        }
        if n < 2 || na <= 0.0 || nb <= 0.0 {
            return 0.0;
        }
        (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
    }
}

impl Predictor for TimeAwareSur {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        let m = self.data.matrix();
        if user.index() >= m.num_users() || item.index() >= m.num_items() {
            return None;
        }
        let mut neighbors: Vec<(f64, f64, i64, UserId)> = m
            .item_ratings(item)
            .filter(|&(c, _)| c != user)
            .filter_map(|(c, r)| {
                let s = self.decayed_user_pcc(user, c);
                if s <= 0.0 {
                    return None;
                }
                let t = self.data.time_of(c, item).expect("rating exists");
                Some((s, r, t, c))
            })
            .collect();
        if let Some(cap) = self.config.neighborhood {
            neighbors.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("similarities are finite")
                    .then(a.3.cmp(&b.3))
            });
            neighbors.truncate(cap);
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for &(s, r, t, c) in &neighbors {
            let w = if self.config.decay_neighbor_ratings {
                s * self.config.decay.weight(t, self.now)
            } else {
                s
            };
            num += w * (r - m.user_mean(c));
            den += w;
        }
        let raw = if den > f64::EPSILON {
            m.user_mean(user) + num / den
        } else if m.user_count(user) > 0 {
            m.user_mean(user)
        } else {
            m.global_mean()
        };
        Some(m.scale().clamp(raw))
    }

    fn name(&self) -> &'static str {
        "SUR-time"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(u: u32, i: u32, r: f64, t: i64) -> (UserId, ItemId, f64, i64) {
        (UserId::new(u), ItemId::new(i), r, t)
    }

    /// A drifting active user: user 0 loved items 0/1 long ago, loves
    /// items 2/3 now. Candidate 1 matches the *new* self, candidate 2
    /// the *old* self; they rate the target item 6 oppositely.
    fn drifting_fixture() -> TimestampedMatrix {
        TimestampedMatrix::from_quads(vec![
            // user 0, old self
            q(0, 0, 5.0, 10),
            q(0, 1, 5.0, 20),
            q(0, 4, 1.0, 30),
            // user 0, new self
            q(0, 2, 5.0, 900),
            q(0, 3, 5.0, 920),
            q(0, 5, 1.0, 940),
            // candidate 1: matches the new self
            q(1, 2, 5.0, 500),
            q(1, 3, 5.0, 510),
            q(1, 5, 1.0, 520),
            q(1, 0, 1.0, 530),
            q(1, 6, 5.0, 540),
            // candidate 2: matches the old self
            q(2, 0, 5.0, 100),
            q(2, 1, 5.0, 110),
            q(2, 4, 1.0, 120),
            q(2, 2, 1.0, 130),
            q(2, 6, 1.0, 140),
        ])
        .unwrap()
    }

    #[test]
    fn active_age_mode_follows_the_recent_self() {
        let data = drifting_fixture();
        let model = TimeAwareSur::fit(
            &data,
            TimeAwareSurConfig {
                decay: Decay::with_half_life(200.0),
                mode: DecayMode::ActiveAge,
                decay_neighbor_ratings: false,
                neighborhood: None,
            },
        );
        // prediction for item 6: candidate 1 (new-self match) says 5,
        // candidate 2 (old-self match) says 1.
        let r = model.predict(UserId::new(0), ItemId::new(6)).unwrap();
        assert!(r > 3.2, "should lean toward the recent self, got {r}");
    }

    #[test]
    fn no_decay_mixes_both_selves() {
        let data = drifting_fixture();
        let model = TimeAwareSur::fit(
            &data,
            TimeAwareSurConfig {
                decay: Decay::with_half_life(1e15),
                mode: DecayMode::ActiveAge,
                decay_neighbor_ratings: false,
                neighborhood: None,
            },
        );
        let decayed = TimeAwareSur::fit(
            &data,
            TimeAwareSurConfig {
                decay: Decay::with_half_life(200.0),
                mode: DecayMode::ActiveAge,
                decay_neighbor_ratings: false,
                neighborhood: None,
            },
        );
        let plain = model.predict(UserId::new(0), ItemId::new(6)).unwrap();
        let tracked = decayed.predict(UserId::new(0), ItemId::new(6)).unwrap();
        assert!(
            tracked > plain,
            "decay should pull toward the new self: {tracked} vs {plain}"
        );
    }

    #[test]
    fn oldest_of_pair_discounts_ancient_agreement() {
        // user 2 agreed with user 0 long ago only; user 1 recently.
        let data = TimestampedMatrix::from_quads(vec![
            q(0, 0, 5.0, 900),
            q(0, 1, 1.0, 920),
            q(0, 2, 4.0, 950),
            q(1, 0, 5.0, 880),
            q(1, 1, 1.0, 890),
            q(1, 2, 4.0, 910),
            q(1, 5, 5.0, 930),
            q(2, 0, 5.0, 10),
            q(2, 1, 1.0, 20),
            q(2, 2, 4.0, 30),
            q(2, 5, 1.0, 40),
        ])
        .unwrap();
        let model = TimeAwareSur::fit(
            &data,
            TimeAwareSurConfig {
                decay: Decay::with_half_life(100.0),
                mode: DecayMode::OldestOfPair,
                decay_neighbor_ratings: true,
                neighborhood: None,
            },
        );
        let r = model.predict(UserId::new(0), ItemId::new(5)).unwrap();
        assert!(r > 3.5, "recent friend should dominate, got {r}");
    }

    #[test]
    fn predictions_are_in_range_and_total() {
        let (data, _) = crate::DriftConfig::default().generate();
        let model = TimeAwareSur::fit_default(&data);
        for u in (0..data.matrix().num_users()).step_by(13) {
            for i in (0..data.matrix().num_items()).step_by(17) {
                let r = model
                    .predict(UserId::from(u), ItemId::from(i))
                    .expect("in range");
                assert!((1.0..=5.0).contains(&r));
            }
        }
    }

    #[test]
    fn out_of_range_is_none() {
        let (data, _) = crate::DriftConfig::default().generate();
        let model = TimeAwareSur::fit_default(&data);
        assert!(model.predict(UserId::new(9999), ItemId::new(0)).is_none());
    }
}
