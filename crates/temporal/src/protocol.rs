//! Train-on-the-past / test-on-the-future evaluation protocol.

use cf_matrix::{ItemId, UserId};

use crate::TimestampedMatrix;

/// A chronological split: for every user, the earliest fraction of their
/// ratings trains, the rest is held out.
#[derive(Debug, Clone)]
pub struct TemporalSplit {
    /// Training data (each user's earliest ratings).
    pub train: TimestampedMatrix,
    /// Held-out future ratings: `(user, item, rating, timestamp)`.
    pub holdout: Vec<(UserId, ItemId, f64, i64)>,
}

/// Splits each user's history chronologically: the earliest
/// `train_fraction` of their ratings (by timestamp) go to training, the
/// rest to the holdout. Users with one rating stay entirely in training.
///
/// This is the protocol where preference drift is visible: a
/// time-oblivious model trained on the past mispredicts the future of a
/// drifted user, a time-decayed one tracks it.
pub fn temporal_split(data: &TimestampedMatrix, train_fraction: f64) -> TemporalSplit {
    assert!(
        (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
        "fraction must be in (0, 1), got {train_fraction}"
    );
    let m = data.matrix();
    let mut train_quads = Vec::new();
    let mut holdout = Vec::new();
    for u in m.users() {
        let mut row: Vec<(ItemId, f64, i64)> = data.user_row_timed(u).collect();
        if row.is_empty() {
            continue;
        }
        row.sort_by_key(|&(_, _, t)| t);
        let cut = ((row.len() as f64 * train_fraction).ceil() as usize).clamp(1, row.len());
        for (k, (i, r, t)) in row.into_iter().enumerate() {
            if k < cut {
                train_quads.push((u, i, r, t));
            } else {
                holdout.push((u, i, r, t));
            }
        }
    }
    let train = TimestampedMatrix::from_quads(train_quads)
        .expect("chronological split of valid data is valid");
    TemporalSplit { train, holdout }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DriftConfig;

    #[test]
    fn split_is_chronological_per_user() {
        let (data, _) = DriftConfig::default().generate();
        let split = temporal_split(&data, 0.7);
        assert!(!split.holdout.is_empty());
        for u in split.train.matrix().users() {
            let train_max = split.train.user_row_timed(u).map(|(_, _, t)| t).max();
            let holdout_min = split
                .holdout
                .iter()
                .filter(|&&(hu, _, _, _)| hu == u)
                .map(|&(_, _, _, t)| t)
                .min();
            if let (Some(tm), Some(hm)) = (train_max, holdout_min) {
                assert!(tm <= hm, "user {u:?}: train max {tm} > holdout min {hm}");
            }
        }
    }

    #[test]
    fn fractions_partition_each_profile() {
        let (data, _) = DriftConfig::default().generate();
        let split = temporal_split(&data, 0.5);
        let m = data.matrix();
        for u in m.users() {
            let train_count = split.train.matrix().user_count(u);
            let held = split
                .holdout
                .iter()
                .filter(|&&(hu, _, _, _)| hu == u)
                .count();
            assert_eq!(train_count + held, m.user_count(u));
            assert!(train_count >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1)")]
    fn bad_fraction_panics() {
        let (data, _) = DriftConfig::default().generate();
        let _ = temporal_split(&data, 1.5);
    }

    #[test]
    fn time_decay_beats_plain_sur_on_drifting_data() {
        // The headline claim of the extension, checked end to end.
        let cfg = DriftConfig {
            drift_fraction: 0.8,
            noise_sd: 0.25,
            ratings_per_user: 60,
            num_items: 200,
            ..DriftConfig::default()
        };
        let (data, _) = cfg.generate();
        let split = temporal_split(&data, 0.75);

        let decayed = crate::TimeAwareSur::fit(
            &split.train,
            crate::TimeAwareSurConfig {
                decay: crate::Decay::with_half_life(cfg.time_span as f64 / 8.0),
                mode: crate::DecayMode::ActiveAge,
                decay_neighbor_ratings: false,
                neighborhood: Some(40),
            },
        );
        let plain = crate::TimeAwareSur::fit(
            &split.train,
            crate::TimeAwareSurConfig {
                // effectively no decay = plain SUR under the same code path
                decay: crate::Decay::with_half_life(1e15),
                mode: crate::DecayMode::ActiveAge,
                decay_neighbor_ratings: false,
                neighborhood: Some(40),
            },
        );
        let mae = |model: &crate::TimeAwareSur| {
            let mut err = 0.0;
            for &(u, i, r, _) in &split.holdout {
                let p = cf_matrix::Predictor::predict(model, u, i).unwrap();
                err += (p - r).abs();
            }
            err / split.holdout.len() as f64
        };
        let mae_decay = mae(&decayed);
        let mae_plain = mae(&plain);
        assert!(
            mae_decay < mae_plain,
            "decay {mae_decay:.3} should beat plain {mae_plain:.3} under drift"
        );
    }
}
