//! Exponential time decay.

/// Exponential decay with a half-life: a rating `age` time units old
/// weighs `0.5^(age / half_life)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decay {
    half_life: f64,
}

impl Decay {
    /// Creates a decay with the given half-life (same unit as the
    /// timestamps, e.g. seconds for MovieLens). Panics if non-positive.
    pub fn with_half_life(half_life: f64) -> Self {
        assert!(
            half_life.is_finite() && half_life > 0.0,
            "half-life must be positive, got {half_life}"
        );
        Self { half_life }
    }

    /// The weight of evidence recorded at `t`, evaluated at `now`.
    /// Future timestamps (clock skew) clamp to weight 1.
    #[inline]
    pub fn weight(&self, t: i64, now: i64) -> f64 {
        let age = (now - t).max(0) as f64;
        (-std::f64::consts::LN_2 * age / self.half_life).exp()
    }

    /// The configured half-life.
    pub fn half_life(&self) -> f64 {
        self.half_life
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_halves_every_half_life() {
        let d = Decay::with_half_life(100.0);
        assert!((d.weight(1000, 1000) - 1.0).abs() < 1e-12);
        assert!((d.weight(900, 1000) - 0.5).abs() < 1e-12);
        assert!((d.weight(800, 1000) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn future_timestamps_clamp_to_one() {
        let d = Decay::with_half_life(100.0);
        assert_eq!(d.weight(2000, 1000), 1.0);
    }

    #[test]
    fn weight_is_monotone_in_age() {
        let d = Decay::with_half_life(37.0);
        let mut prev = f64::INFINITY;
        for age in 0..200 {
            let w = d.weight(1000 - age, 1000);
            assert!(w <= prev && w > 0.0);
            prev = w;
        }
    }

    #[test]
    #[should_panic(expected = "half-life must be positive")]
    fn zero_half_life_panics() {
        let _ = Decay::with_half_life(0.0);
    }
}
