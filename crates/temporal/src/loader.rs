//! Timestamped `u.data` loading.
//!
//! `cf-data`'s loader discards the fourth (timestamp) column because the
//! paper's protocol never uses it; this one keeps it, producing a
//! [`TimestampedMatrix`] the temporal extension can run on real
//! MovieLens data.

use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use cf_matrix::{ItemId, UserId};

use crate::TimestampedMatrix;

/// Errors while loading timestamped ratings.
#[derive(Debug)]
pub enum TemporalLoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What failed.
        message: String,
    },
    /// The ratings failed matrix validation.
    Matrix(cf_matrix::MatrixError),
}

impl std::fmt::Display for TemporalLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Parse { line, message } => write!(f, "line {line}: {message}"),
            Self::Matrix(e) => write!(f, "invalid rating data: {e}"),
        }
    }
}

impl std::error::Error for TemporalLoadError {}

/// Parses `user<TAB>item<TAB>rating<TAB>timestamp` lines (1-based ids,
/// timestamp **required** here, unlike the plain loader).
pub fn load_timestamped_reader<R: Read>(reader: R) -> Result<TimestampedMatrix, TemporalLoadError> {
    let reader = BufReader::new(reader);
    let mut quads = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(TemporalLoadError::Io)?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(TemporalLoadError::Parse {
                line: line_no,
                message: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        let parse = |k: usize, what: &str| -> Result<f64, TemporalLoadError> {
            fields[k].parse().map_err(|_| TemporalLoadError::Parse {
                line: line_no,
                message: format!("cannot parse {what} from {:?}", fields[k]),
            })
        };
        let user = parse(0, "user id")? as u64;
        let item = parse(1, "item id")? as u64;
        let rating = parse(2, "rating")?;
        let t = parse(3, "timestamp")? as i64;
        if user == 0 || item == 0 {
            return Err(TemporalLoadError::Parse {
                line: line_no,
                message: "MovieLens ids are 1-based; found 0".into(),
            });
        }
        quads.push((
            UserId::new((user - 1) as u32),
            ItemId::new((item - 1) as u32),
            rating,
            t,
        ));
    }
    TimestampedMatrix::from_quads(quads).map_err(TemporalLoadError::Matrix)
}

/// Loads a timestamped `u.data` file from disk.
pub fn load_timestamped(path: impl AsRef<Path>) -> Result<TimestampedMatrix, TemporalLoadError> {
    let file = std::fs::File::open(path).map_err(TemporalLoadError::Io)?;
    load_timestamped_reader(file)
}

/// Parses timestamped `u.data` text from a string.
pub fn load_timestamped_str(text: &str) -> Result<TimestampedMatrix, TemporalLoadError> {
    load_timestamped_reader(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_movielens_lines_with_timestamps() {
        let data = load_timestamped_str("1\t2\t5\t881250949\n2\t1\t3\t891717742\n").unwrap();
        assert_eq!(data.matrix().num_ratings(), 2);
        assert_eq!(
            data.time_of(UserId::new(0), ItemId::new(1)),
            Some(881_250_949)
        );
        assert_eq!(data.t_max(), 891_717_742);
    }

    #[test]
    fn missing_timestamp_is_an_error() {
        let e = load_timestamped_str("1\t2\t5\n").unwrap_err();
        assert!(e.to_string().contains("expected 4 fields"), "{e}");
    }

    #[test]
    fn zero_ids_rejected() {
        assert!(load_timestamped_str("0\t1\t3\t1\n").is_err());
    }

    #[test]
    fn bad_ratings_propagate_matrix_validation() {
        let e = load_timestamped_str("1\t1\t42\t1\n").unwrap_err();
        assert!(matches!(e, TemporalLoadError::Matrix(_)));
    }
}
