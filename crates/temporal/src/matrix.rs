//! A rating matrix with one timestamp per rating.

use cf_matrix::{ItemId, MatrixBuilder, MatrixError, RatingMatrix, UserId};

/// A [`RatingMatrix`] plus a per-rating timestamp (seconds, arbitrary
/// epoch — MovieLens uses Unix time).
///
/// Timestamps are stored in the matrix's user-major (CSR) order, so
/// lookup shares the matrix's row binary search.
#[derive(Debug, Clone)]
pub struct TimestampedMatrix {
    matrix: RatingMatrix,
    /// Aligned with the matrix's user-major value order.
    times: Vec<i64>,
    /// CSR row offsets into `times` (offsets[u] = index of user u's
    /// first timestamp).
    offsets: Vec<usize>,
    t_min: i64,
    t_max: i64,
}

impl TimestampedMatrix {
    /// Builds from `(user, item, rating, timestamp)` quadruplets.
    pub fn from_quads(
        quads: impl IntoIterator<Item = (UserId, ItemId, f64, i64)>,
    ) -> Result<Self, MatrixError> {
        let mut triplets = Vec::new();
        let mut stamped: Vec<(UserId, ItemId, i64)> = Vec::new();
        for (u, i, r, t) in quads {
            triplets.push((u, i, r));
            stamped.push((u, i, t));
        }
        let mut b = MatrixBuilder::new();
        for &(u, i, r) in &triplets {
            b.push(u, i, r);
        }
        let matrix = b.build()?;
        // Reorder timestamps into the matrix's CSR order.
        stamped.sort_unstable_by_key(|&(u, i, _)| (u, i));
        stamped.dedup_by_key(|&mut (u, i, _)| (u, i));
        debug_assert_eq!(stamped.len(), matrix.num_ratings());
        let times: Vec<i64> = stamped.iter().map(|&(_, _, t)| t).collect();
        let t_min = times.iter().copied().min().unwrap_or(0);
        let t_max = times.iter().copied().max().unwrap_or(0);
        let offsets = Self::compute_offsets(&matrix);
        Ok(Self {
            matrix,
            times,
            offsets,
            t_min,
            t_max,
        })
    }

    /// The plain rating matrix (timestamp-oblivious algorithms train on
    /// this directly).
    pub fn matrix(&self) -> &RatingMatrix {
        &self.matrix
    }

    /// Timestamp of the rating `(u, i)`, if rated.
    pub fn time_of(&self, u: UserId, i: ItemId) -> Option<i64> {
        let (items, _) = self.matrix.user_row(u);
        let pos = items.binary_search(&i).ok()?;
        let base = self.row_base(u);
        Some(self.times[base + pos])
    }

    /// The user's row as `(item, rating, timestamp)` entries.
    pub fn user_row_timed(&self, u: UserId) -> impl Iterator<Item = (ItemId, f64, i64)> + '_ {
        let base = self.row_base(u);
        self.matrix
            .user_ratings(u)
            .enumerate()
            .map(move |(k, (i, r))| (i, r, self.times[base + k]))
    }

    #[inline]
    fn row_base(&self, u: UserId) -> usize {
        self.offsets[u.index()]
    }

    /// Earliest timestamp in the data.
    pub fn t_min(&self) -> i64 {
        self.t_min
    }

    /// Latest timestamp in the data ("now" for decay purposes).
    pub fn t_max(&self) -> i64 {
        self.t_max
    }
}

impl TimestampedMatrix {
    /// Precomputes the CSR row offset of every user's first rating.
    fn compute_offsets(matrix: &RatingMatrix) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(matrix.num_users());
        let mut acc = 0usize;
        for u in matrix.users() {
            offsets.push(acc);
            acc += matrix.user_count(u);
        }
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quads() -> Vec<(UserId, ItemId, f64, i64)> {
        vec![
            (UserId::new(1), ItemId::new(0), 3.0, 200),
            (UserId::new(0), ItemId::new(1), 5.0, 100),
            (UserId::new(0), ItemId::new(0), 4.0, 50),
            (UserId::new(1), ItemId::new(2), 2.0, 400),
        ]
    }

    #[test]
    fn timestamps_follow_their_ratings() {
        let t = TimestampedMatrix::from_quads(quads()).unwrap();
        assert_eq!(t.time_of(UserId::new(0), ItemId::new(0)), Some(50));
        assert_eq!(t.time_of(UserId::new(0), ItemId::new(1)), Some(100));
        assert_eq!(t.time_of(UserId::new(1), ItemId::new(0)), Some(200));
        assert_eq!(t.time_of(UserId::new(1), ItemId::new(2)), Some(400));
        assert_eq!(t.time_of(UserId::new(1), ItemId::new(1)), None);
    }

    #[test]
    fn bounds_and_rows() {
        let t = TimestampedMatrix::from_quads(quads()).unwrap();
        assert_eq!(t.t_min(), 50);
        assert_eq!(t.t_max(), 400);
        let row: Vec<_> = t.user_row_timed(UserId::new(1)).collect();
        assert_eq!(
            row,
            vec![(ItemId::new(0), 3.0, 200), (ItemId::new(2), 2.0, 400)]
        );
    }

    #[test]
    fn invalid_ratings_propagate_matrix_errors() {
        let bad = vec![(UserId::new(0), ItemId::new(0), 9.0, 1)];
        assert!(TimestampedMatrix::from_quads(bad).is_err());
    }
}
