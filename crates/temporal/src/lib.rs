//! # cf-temporal — timestamps, preference drift, and time-decayed CF
//!
//! The CFSF paper closes with two accuracy-side future-work items (§VI):
//! capturing "dates associated with the ratings … which may reflect
//! shifts of user preferences". This crate implements that extension:
//!
//! - [`TimestampedMatrix`] — a rating matrix with a per-rating timestamp,
//!   buildable from MovieLens `u.data` (whose fourth column is exactly
//!   this) or from the drifting synthetic generator,
//! - [`DriftConfig`] — a seeded generator where a fraction of users
//!   *switch taste groups* mid-stream: their early ratings follow one
//!   preference profile, their late ratings another,
//! - [`Decay`] — exponential time decay with a configurable half-life,
//! - [`TimeAwareSur`] — user-based CF whose evidence is decay-weighted
//!   toward the present, against which plain SUR loses on drifted users,
//! - [`temporal_split`] — a train-on-the-past / test-on-the-future
//!   protocol (per-user chronological split), the evaluation setting
//!   drift actually shows up in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decay;
mod drift;
mod loader;
mod matrix;
mod predictor;
mod protocol;

pub use decay::Decay;
pub use drift::DriftConfig;
pub use loader::{
    load_timestamped, load_timestamped_reader, load_timestamped_str, TemporalLoadError,
};
pub use matrix::TimestampedMatrix;
pub use predictor::{DecayMode, TimeAwareSur, TimeAwareSurConfig};
pub use protocol::{temporal_split, TemporalSplit};
