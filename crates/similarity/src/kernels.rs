//! Pairwise similarity kernels over the sparse rating matrix.
//!
//! All kernels intersect two sorted sparse vectors with a merge walk, so a
//! pairwise similarity costs `O(len_a + len_b)`. Pearson kernels center on
//! the *entity's global mean* (the item's/user's mean over all its ratings),
//! exactly as Eq. 5/6 of the paper write `r̄_{i_a}` and `r̄_{u_a}`.

use cf_matrix::{ItemId, RatingMatrix, UserId};

/// Minimum number of co-ratings required before a Pearson correlation is
/// considered meaningful; below this the kernels return 0 (a single shared
/// rating always correlates perfectly, which is pure noise).
pub const MIN_OVERLAP: usize = 2;

/// Merge-walk over two id-sorted sparse vectors, calling `f(va, vb)` for
/// every shared id.
#[inline]
fn for_each_corated<K: Ord + Copy>(
    ids_a: &[K],
    vals_a: &[f64],
    ids_b: &[K],
    vals_b: &[f64],
    mut f: impl FnMut(f64, f64),
) {
    let (mut x, mut y) = (0usize, 0usize);
    while x < ids_a.len() && y < ids_b.len() {
        match ids_a[x].cmp(&ids_b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                f(vals_a[x], vals_b[y]);
                x += 1;
                y += 1;
            }
        }
    }
}

/// Pearson correlation of the numbers fed through the accumulator.
#[derive(Default)]
struct PccAcc {
    n: usize,
    dot: f64,
    norm_a: f64,
    norm_b: f64,
}

impl PccAcc {
    #[inline]
    fn push(&mut self, da: f64, db: f64) {
        self.n += 1;
        self.dot += da * db;
        self.norm_a += da * da;
        self.norm_b += db * db;
    }

    fn finish(self) -> f64 {
        if self.n < MIN_OVERLAP || self.norm_a <= 0.0 || self.norm_b <= 0.0 {
            return 0.0;
        }
        let r = self.dot / (self.norm_a.sqrt() * self.norm_b.sqrt());
        // Guard against floating-point drift past ±1.
        r.clamp(-1.0, 1.0)
    }
}

/// Item-item Pearson Correlation Coefficient (paper Eq. 5).
///
/// Correlates the ratings users in `U{a} ∩ U{b}` gave the two items,
/// centered on each item's mean rating. Returns 0 when the overlap is
/// below [`MIN_OVERLAP`] or either side has no variance.
pub fn item_pcc(m: &RatingMatrix, a: ItemId, b: ItemId) -> f64 {
    let (users_a, vals_a) = m.item_col(a);
    let (users_b, vals_b) = m.item_col(b);
    let (mean_a, mean_b) = (m.item_mean(a), m.item_mean(b));
    let mut acc = PccAcc::default();
    for_each_corated(users_a, vals_a, users_b, vals_b, |ra, rb| {
        acc.push(ra - mean_a, rb - mean_b)
    });
    acc.finish()
}

/// User-user Pearson Correlation Coefficient (paper Eq. 6).
///
/// Correlates the ratings the two users gave items in `I(a) ∩ I(b)`,
/// centered on each user's mean rating.
pub fn user_pcc(m: &RatingMatrix, a: UserId, b: UserId) -> f64 {
    let (items_a, vals_a) = m.user_row(a);
    let (items_b, vals_b) = m.user_row(b);
    let (mean_a, mean_b) = (m.user_mean(a), m.user_mean(b));
    let mut acc = PccAcc::default();
    for_each_corated(items_a, vals_a, items_b, vals_b, |ra, rb| {
        acc.push(ra - mean_a, rb - mean_b)
    });
    acc.finish()
}

/// Pure cosine (VSS) similarity between two item columns.
///
/// The paper rejects this for GIS because it ignores rating-style
/// diversity (§IV-B); it is kept for ablation benchmarks.
pub fn cosine(m: &RatingMatrix, a: ItemId, b: ItemId) -> f64 {
    let (users_a, vals_a) = m.item_col(a);
    let (users_b, vals_b) = m.item_col(b);
    let mut acc = PccAcc::default();
    for_each_corated(users_a, vals_a, users_b, vals_b, |ra, rb| acc.push(ra, rb));
    acc.finish()
}

/// Adjusted cosine similarity between two item columns: ratings are
/// centered on the *user's* mean instead of the item's (Sarwar et al.,
/// WWW 2001). Kept for ablation benchmarks.
pub fn adjusted_cosine(m: &RatingMatrix, a: ItemId, b: ItemId) -> f64 {
    let (users_a, vals_a) = m.item_col(a);
    let (users_b, vals_b) = m.item_col(b);
    let mut acc = PccAcc::default();
    // Merge walk duplicated here because we need the shared *user id* to
    // look up its mean, not just the two values.
    let (mut x, mut y) = (0usize, 0usize);
    while x < users_a.len() && y < users_b.len() {
        match users_a[x].cmp(&users_b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                let mu = m.user_mean(users_a[x]);
                acc.push(vals_a[x] - mu, vals_b[y] - mu);
                x += 1;
                y += 1;
            }
        }
    }
    acc.finish()
}

/// Significance weighting: devalues similarities computed from few
/// co-ratings by `min(n, cap) / cap`. Used by the EMDP baseline (Ma et
/// al., SIGIR 2007) with caps γ (users) and δ (items).
#[inline]
pub fn significance_weight(overlap: usize, cap: usize) -> f64 {
    if cap == 0 {
        return 1.0;
    }
    (overlap.min(cap) as f64) / cap as f64
}

/// Spearman rank correlation between two users over their co-rated
/// items: Pearson correlation of the *ranks* of the co-rated values
/// (ties get average ranks). More robust than PCC to users who use the
/// rating scale non-linearly; provided as an alternative kernel for
/// experimentation — the paper itself uses PCC throughout.
pub fn spearman_user(m: &RatingMatrix, a: UserId, b: UserId) -> f64 {
    let (items_a, vals_a) = m.user_row(a);
    let (items_b, vals_b) = m.user_row(b);
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for_each_corated(items_a, vals_a, items_b, vals_b, |ra, rb| {
        pairs.push((ra, rb))
    });
    spearman_of_pairs(&pairs)
}

/// Spearman rank correlation between two items over their co-raters.
pub fn spearman_item(m: &RatingMatrix, a: ItemId, b: ItemId) -> f64 {
    let (users_a, vals_a) = m.item_col(a);
    let (users_b, vals_b) = m.item_col(b);
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for_each_corated(users_a, vals_a, users_b, vals_b, |ra, rb| {
        pairs.push((ra, rb))
    });
    spearman_of_pairs(&pairs)
}

/// Average ranks (1-based, ties averaged) of a value vector.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| values[x].total_cmp(&values[y]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && cf_matrix::approx_eq(values[order[j + 1]], values[order[i]]) {
            j += 1;
        }
        // positions i..=j share the same value: average rank
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

fn spearman_of_pairs(pairs: &[(f64, f64)]) -> f64 {
    if pairs.len() < MIN_OVERLAP {
        return 0.0;
    }
    let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let rx = average_ranks(&xs);
    let ry = average_ranks(&ys);
    let mx = rx.iter().sum::<f64>() / rx.len() as f64;
    let my = ry.iter().sum::<f64>() / ry.len() as f64;
    let mut acc = PccAcc::default();
    for (x, y) in rx.iter().zip(&ry) {
        acc.push(x - mx, y - my);
    }
    acc.finish()
}

/// Number of co-raters of two items (size of `U{a} ∩ U{b}`).
pub fn item_overlap(m: &RatingMatrix, a: ItemId, b: ItemId) -> usize {
    let (users_a, _) = m.item_col(a);
    let (users_b, _) = m.item_col(b);
    let mut n = 0usize;
    let (mut x, mut y) = (0usize, 0usize);
    while x < users_a.len() && y < users_b.len() {
        match users_a[x].cmp(&users_b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                x += 1;
                y += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::MatrixBuilder;

    /// 4 users × 4 items crafted so i0 and i1 correlate positively,
    /// i0 and i2 negatively.
    ///        i0  i1  i2  i3
    ///  u0     5   4   1   3
    ///  u1     4   3   2   .
    ///  u2     1   2   5   3
    ///  u3     2   1   4   .
    fn m() -> RatingMatrix {
        let mut b = MatrixBuilder::new();
        let data = [
            (0, 0, 5.0),
            (0, 1, 4.0),
            (0, 2, 1.0),
            (0, 3, 3.0),
            (1, 0, 4.0),
            (1, 1, 3.0),
            (1, 2, 2.0),
            (2, 0, 1.0),
            (2, 1, 2.0),
            (2, 2, 5.0),
            (2, 3, 3.0),
            (3, 0, 2.0),
            (3, 1, 1.0),
            (3, 2, 4.0),
        ];
        for (u, i, r) in data {
            b.push(UserId::new(u), ItemId::new(i), r);
        }
        b.build().unwrap()
    }

    #[test]
    fn item_pcc_sign_structure() {
        let m = m();
        let pos = item_pcc(&m, ItemId::new(0), ItemId::new(1));
        let neg = item_pcc(&m, ItemId::new(0), ItemId::new(2));
        assert!(pos > 0.8, "expected strong positive, got {pos}");
        assert!(neg < -0.8, "expected strong negative, got {neg}");
    }

    #[test]
    fn item_pcc_is_symmetric_and_bounded() {
        let m = m();
        for a in 0..4u32 {
            for b in 0..4u32 {
                let ab = item_pcc(&m, ItemId::new(a), ItemId::new(b));
                let ba = item_pcc(&m, ItemId::new(b), ItemId::new(a));
                assert!((ab - ba).abs() < 1e-12);
                assert!((-1.0..=1.0).contains(&ab));
            }
        }
    }

    #[test]
    fn self_similarity_is_one_with_variance() {
        let m = m();
        assert!((item_pcc(&m, ItemId::new(0), ItemId::new(0)) - 1.0).abs() < 1e-12);
        assert!((user_pcc(&m, UserId::new(0), UserId::new(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_column_yields_zero() {
        // i3 is rated 3.0 by everyone who rated it: no variance.
        let m = m();
        assert_eq!(item_pcc(&m, ItemId::new(0), ItemId::new(3)), 0.0);
    }

    #[test]
    fn insufficient_overlap_yields_zero() {
        let mut b = MatrixBuilder::new();
        // items 0 and 1 share exactly one rater
        b.push(UserId::new(0), ItemId::new(0), 5.0);
        b.push(UserId::new(0), ItemId::new(1), 5.0);
        b.push(UserId::new(1), ItemId::new(0), 1.0);
        b.push(UserId::new(2), ItemId::new(1), 1.0);
        let m = b.build().unwrap();
        assert_eq!(item_pcc(&m, ItemId::new(0), ItemId::new(1)), 0.0);
        assert_eq!(item_overlap(&m, ItemId::new(0), ItemId::new(1)), 1);
    }

    #[test]
    fn user_pcc_detects_like_minded_users() {
        let m = m();
        // u0 and u1 rate in the same direction; u0 and u2 oppositely.
        assert!(user_pcc(&m, UserId::new(0), UserId::new(1)) > 0.5);
        assert!(user_pcc(&m, UserId::new(0), UserId::new(2)) < -0.5);
    }

    #[test]
    fn cosine_ignores_rating_style() {
        let m = m();
        // Raw cosine of all-positive ratings is high even for the
        // negatively correlated pair — the flaw the paper cites.
        let c = cosine(&m, ItemId::new(0), ItemId::new(2));
        assert!(c > 0.5, "raw cosine should stay high, got {c}");
        assert!(item_pcc(&m, ItemId::new(0), ItemId::new(2)) < 0.0);
    }

    #[test]
    fn adjusted_cosine_recovers_sign() {
        let m = m();
        assert!(adjusted_cosine(&m, ItemId::new(0), ItemId::new(2)) < 0.0);
    }

    #[test]
    fn spearman_agrees_with_monotone_relationships() {
        // u0 and u1 rank items identically but use the scale differently
        // (non-linear transform): Spearman = 1, PCC < 1.
        let mut b = MatrixBuilder::new();
        let u0 = [1.0, 2.0, 3.0, 4.0, 5.0];
        let u1 = [1.0, 1.0, 2.0, 5.0, 5.0]; // monotone, compressed
        for (i, (&a, &c)) in u0.iter().zip(&u1).enumerate() {
            b.push(UserId::new(0), ItemId::from(i), a);
            b.push(UserId::new(1), ItemId::from(i), c);
        }
        let m = b.build().unwrap();
        let s = spearman_user(&m, UserId::new(0), UserId::new(1));
        assert!(s > 0.9, "monotone agreement should score high, got {s}");
    }

    #[test]
    fn spearman_detects_reversed_ranking() {
        let mut b = MatrixBuilder::new();
        for i in 0..5usize {
            b.push(UserId::new(0), ItemId::from(i), 1.0 + i as f64);
            b.push(UserId::new(1), ItemId::from(i), 5.0 - i as f64);
        }
        let m = b.build().unwrap();
        let s = spearman_user(&m, UserId::new(0), UserId::new(1));
        assert!((s + 1.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn spearman_handles_ties_and_small_overlap() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), 3.0);
        b.push(UserId::new(1), ItemId::new(0), 3.0);
        let m2 = b.build().unwrap();
        assert_eq!(spearman_user(&m2, UserId::new(0), UserId::new(1)), 0.0);

        // all-tied values → zero variance in ranks → 0
        let mut b = MatrixBuilder::new();
        for i in 0..4usize {
            b.push(UserId::new(0), ItemId::from(i), 3.0);
            b.push(UserId::new(1), ItemId::from(i), 1.0 + i as f64);
        }
        let m = b.build().unwrap();
        assert_eq!(spearman_user(&m, UserId::new(0), UserId::new(1)), 0.0);
    }

    #[test]
    fn spearman_item_is_symmetric_and_bounded() {
        let m = m();
        for a in 0..4u32 {
            for b in 0..4u32 {
                let ab = spearman_item(&m, ItemId::new(a), ItemId::new(b));
                let ba = spearman_item(&m, ItemId::new(b), ItemId::new(a));
                assert!((ab - ba).abs() < 1e-12);
                assert!((-1.0..=1.0).contains(&ab));
            }
        }
    }

    #[test]
    fn average_ranks_handle_ties() {
        assert_eq!(average_ranks(&[10.0, 20.0, 30.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(average_ranks(&[10.0, 10.0, 30.0]), vec![1.5, 1.5, 3.0]);
        assert_eq!(average_ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn significance_weight_ramps_then_saturates() {
        assert_eq!(significance_weight(0, 50), 0.0);
        assert!((significance_weight(25, 50) - 0.5).abs() < 1e-12);
        assert_eq!(significance_weight(50, 50), 1.0);
        assert_eq!(significance_weight(500, 50), 1.0);
        assert_eq!(significance_weight(3, 0), 1.0);
    }
}
