//! The Global Item Similarity matrix (GIS) — §IV-B of the paper.
//!
//! The offline phase computes PCC between every pair of items over the
//! entire matrix, keeps per-item neighbor lists sorted in descending
//! similarity, and thresholds away "less important" items so the structure
//! stays small. The online phase then answers "top M similar items" with a
//! slice.

use cf_matrix::{ItemId, RatingMatrix};
use cf_parallel::par_map;

/// Configuration for building a [`Gis`].
#[derive(Debug, Clone)]
pub struct GisConfig {
    /// Keep only neighbors with similarity strictly greater than this
    /// (the paper "sets thresholds for Eq. 5 to filter less important
    /// items"). Default 0: negative and zero correlations are dropped —
    /// they are never useful as "similar items".
    pub threshold: f64,
    /// Hard cap on neighbors stored per item, `None` for unlimited.
    /// Online requests ask for the top `M`; storing a few hundred is
    /// plenty while bounding memory at `Q × cap`.
    pub max_neighbors: Option<usize>,
    /// Worker threads for the pairwise computation (`None` = auto).
    pub threads: Option<usize>,
}

impl Default for GisConfig {
    fn default() -> Self {
        Self {
            threshold: 0.0,
            max_neighbors: Some(400),
            threads: None,
        }
    }
}

/// The Global Item Similarity matrix: for every item, its neighbors sorted
/// by descending PCC.
#[derive(Debug, Clone)]
pub struct Gis {
    /// `lists[q]` = neighbors of item `q`, descending similarity.
    lists: Vec<Vec<(ItemId, f64)>>,
}

/// Computes the PCC of item `a` against every other item, returning all
/// finite similarities (un-thresholded). Shared by the full build and the
/// incremental per-item rebuild.
fn sims_for_item(m: &RatingMatrix, a: ItemId) -> Vec<(ItemId, f64)> {
    let q = m.num_items();
    let p = m.num_users();
    let (users_a, vals_a) = m.item_col(a);
    if users_a.len() < crate::MIN_OVERLAP {
        return Vec::new();
    }
    // Scatter item a's centered column into a dense buffer.
    let mean_a = m.item_mean(a);
    let mut dense = vec![f64::NAN; p];
    for (&u, &r) in users_a.iter().zip(vals_a) {
        dense[u.index()] = r - mean_a;
    }
    let mut sims = Vec::new();
    for b_idx in 0..q {
        if b_idx == a.index() {
            continue;
        }
        let b = ItemId::from(b_idx);
        let (users_b, vals_b) = m.item_col(b);
        let mean_b = m.item_mean(b);
        let mut dot = 0.0;
        let mut norm_a = 0.0;
        let mut norm_b = 0.0;
        let mut n = 0usize;
        for (&u, &r) in users_b.iter().zip(vals_b) {
            let da = dense[u.index()];
            if da.is_nan() {
                continue;
            }
            let db = r - mean_b;
            dot += da * db;
            norm_a += da * da;
            norm_b += db * db;
            n += 1;
        }
        if n < crate::MIN_OVERLAP || norm_a <= 0.0 || norm_b <= 0.0 {
            continue;
        }
        let sim = (dot / (norm_a.sqrt() * norm_b.sqrt())).clamp(-1.0, 1.0);
        sims.push((b, sim));
    }
    sims
}

/// Sorts a neighbor list descending by similarity (ties by item id) and
/// applies threshold + cap.
fn finalize_list(
    mut neighbors: Vec<(ItemId, f64)>,
    threshold: f64,
    cap: Option<usize>,
) -> Vec<(ItemId, f64)> {
    neighbors.retain(|&(_, s)| s > threshold);
    neighbors.sort_unstable_by(|x, y| {
        y.1.partial_cmp(&x.1)
            .expect("similarities are finite")
            .then(x.0.cmp(&y.0))
    });
    if let Some(cap) = cap {
        neighbors.truncate(cap);
    }
    neighbors.shrink_to_fit();
    neighbors
}

impl Gis {
    /// Builds the GIS over the whole matrix in parallel (one task per
    /// item column, dynamically scheduled).
    ///
    /// Cost is `O(Q · (P + nnz))`: for each item the column is scattered
    /// into a dense user-indexed buffer, then every other item's column is
    /// streamed against it.
    pub fn build(m: &RatingMatrix, config: &GisConfig) -> Self {
        cf_obs::time_scope!("offline.gis.build_ns");
        let q = m.num_items();
        let threads = cf_parallel::effective_threads(config.threads);
        let threshold = config.threshold;
        let cap = config.max_neighbors;

        let lists = par_map(q, threads, |a_idx| {
            let t = std::time::Instant::now();
            let list = finalize_list(sims_for_item(m, ItemId::from(a_idx)), threshold, cap);
            cf_obs::histogram!("offline.gis.item_ns").record_duration(t.elapsed());
            list
        });

        let gis = Self { lists };
        cf_obs::counter!("offline.gis.pairs").add(gis.stored_pairs() as u64);
        gis
    }

    /// Incrementally refreshes the similarity lists of the given items
    /// against the (updated) matrix — the paper's future-work question of
    /// "how CFSF can keep GIS up-to-date" (§VI).
    ///
    /// For each stale item this recomputes its own neighbor list exactly,
    /// and patches the *reverse* entries in every other item's list
    /// (updating, inserting, or removing the stale item there). One
    /// approximation is inherent to capped lists: inserting into a full
    /// list evicts its tail, and an entry evicted earlier cannot be
    /// resurrected without a full [`Gis::build`] — callers that need
    /// exactness after heavy churn should rebuild periodically.
    pub fn rebuild_items(&mut self, m: &RatingMatrix, items: &[ItemId], config: &GisConfig) {
        cf_obs::time_scope!("offline.gis.rebuild_ns");
        let threads = cf_parallel::effective_threads(config.threads);
        let threshold = config.threshold;
        let cap = config.max_neighbors;

        let fresh: Vec<(ItemId, Vec<(ItemId, f64)>)> = par_map(items.len(), threads, |k| {
            let a = items[k];
            (a, sims_for_item(m, a))
        });
        cf_obs::counter!("offline.gis.items_rebuilt").add(fresh.len() as u64);

        // Quick membership test for "is b itself also stale" — those rows
        // get fully rebuilt below anyway. Loop-invariant: depends only on
        // `items`, so it is built once, not once per stale item.
        let stale_set: Vec<bool> = {
            let mut v = vec![false; self.lists.len()];
            for &i in items {
                v[i.index()] = true;
            }
            v
        };
        // Scratch buffer reused across stale items; entries written for
        // one item are reset before the next (cheaper than reallocating
        // a Q-sized vec per item when `sims` is sparse).
        let mut new_sim = vec![f64::NAN; self.lists.len()];

        for (a, sims) in fresh {
            // Patch the reverse direction first: every other item's view
            // of `a` changes to the recomputed similarity (or vanishes).
            for &(b, s) in &sims {
                new_sim[b.index()] = s;
            }
            for b_idx in 0..self.lists.len() {
                if b_idx == a.index() || stale_set[b_idx] {
                    continue;
                }
                let list = &mut self.lists[b_idx];
                list.retain(|&(i, _)| i != a);
                let s = new_sim[b_idx];
                if !s.is_nan() && s > threshold {
                    let pos = list
                        .binary_search_by(|&(i, ls)| {
                            s.partial_cmp(&ls)
                                .expect("similarities are finite")
                                .then(i.cmp(&a))
                        })
                        .unwrap_or_else(|p| p);
                    list.insert(pos, (a, s));
                    if let Some(cap) = cap {
                        list.truncate(cap);
                    }
                }
            }
            // Reset the scratch entries this item touched, then replace
            // `a`'s own list exactly.
            for &(b, _) in &sims {
                new_sim[b.index()] = f64::NAN;
            }
            self.lists[a.index()] = finalize_list(sims, threshold, cap);
        }
    }

    /// Reassembles a GIS from per-item neighbor lists (as produced by
    /// [`Gis::neighbors`]) — the deserialization path for model
    /// persistence. Each list must already be sorted by descending
    /// similarity; this is validated and panics otherwise, since a
    /// mis-sorted list silently corrupts every `top_m` query.
    pub fn from_lists(lists: Vec<Vec<(ItemId, f64)>>) -> Self {
        for (idx, list) in lists.iter().enumerate() {
            assert!(
                list.windows(2).all(|w| w[0].1 >= w[1].1),
                "neighbor list of item {idx} is not sorted descending"
            );
        }
        Self { lists }
    }

    /// Number of items the GIS was built over.
    pub fn num_items(&self) -> usize {
        self.lists.len()
    }

    /// All stored neighbors of `item`, descending similarity.
    #[inline]
    pub fn neighbors(&self, item: ItemId) -> &[(ItemId, f64)] {
        &self.lists[item.index()]
    }

    /// The top `m` similar items of `item` (fewer if the list is shorter —
    /// thresholding may leave less than `m` genuine neighbors).
    #[inline]
    pub fn top_m(&self, item: ItemId, m: usize) -> &[(ItemId, f64)] {
        let list = self.neighbors(item);
        &list[..list.len().min(m)]
    }

    /// Stored similarity between `item` and `other`, if `other` survived
    /// thresholding/capping. Linear scan — lists are short and this is
    /// only used by tests and diagnostics.
    pub fn get(&self, item: ItemId, other: ItemId) -> Option<f64> {
        self.neighbors(item)
            .iter()
            .find(|(i, _)| *i == other)
            .map(|&(_, s)| s)
    }

    /// Total number of stored (directed) neighbor pairs.
    pub fn stored_pairs(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item_pcc;
    use cf_matrix::{MatrixBuilder, UserId};

    fn matrix() -> RatingMatrix {
        // 6 users × 5 items with two clear item groups: {0,1} and {2,3};
        // item 4 is anticorrelated with group {0,1}.
        let rows: [&[f64]; 6] = [
            &[5.0, 4.0, 1.0, 2.0, 1.0],
            &[4.0, 5.0, 2.0, 1.0, 2.0],
            &[5.0, 5.0, 1.0, 1.0, 1.0],
            &[1.0, 2.0, 5.0, 4.0, 5.0],
            &[2.0, 1.0, 4.0, 5.0, 4.0],
            &[1.0, 1.0, 5.0, 5.0, 5.0],
        ];
        let mut b = MatrixBuilder::new();
        for (u, row) in rows.iter().enumerate() {
            for (i, &r) in row.iter().enumerate() {
                b.push(UserId::from(u), ItemId::from(i), r);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn gis_matches_pairwise_kernel() {
        let m = matrix();
        let gis = Gis::build(
            &m,
            &GisConfig {
                threshold: -1.0, // keep everything to compare against the kernel
                max_neighbors: None,
                threads: Some(2),
            },
        );
        for a in m.items() {
            for b in m.items() {
                if a == b {
                    continue;
                }
                let expect = item_pcc(&m, a, b);
                let got = gis.get(a, b);
                if expect > -1.0 {
                    let got = got.unwrap_or(0.0);
                    assert!(
                        (got - expect).abs() < 1e-12,
                        "({a:?},{b:?}): gis={got}, kernel={expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn lists_are_sorted_descending() {
        let gis = Gis::build(&matrix(), &GisConfig::default());
        for i in 0..gis.num_items() {
            let list = gis.neighbors(ItemId::from(i));
            assert!(list.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn default_threshold_drops_nonpositive_sims() {
        let m = matrix();
        let gis = Gis::build(&m, &GisConfig::default());
        // item 4 anticorrelates with items 0 and 1: must not appear there.
        assert!(gis.get(ItemId::new(0), ItemId::new(4)).is_none());
        assert!(gis.get(ItemId::new(1), ItemId::new(4)).is_none());
        // but items 0 and 1 are mutual neighbors
        assert!(gis.get(ItemId::new(0), ItemId::new(1)).unwrap() > 0.5);
        for i in m.items() {
            for &(_, s) in gis.neighbors(i) {
                assert!(s > 0.0);
            }
        }
    }

    #[test]
    fn top_m_truncates_but_never_pads() {
        let gis = Gis::build(&matrix(), &GisConfig::default());
        let full = gis.neighbors(ItemId::new(0)).len();
        assert_eq!(gis.top_m(ItemId::new(0), 1).len(), 1.min(full));
        assert_eq!(gis.top_m(ItemId::new(0), 1000).len(), full);
    }

    #[test]
    fn max_neighbors_caps_lists() {
        let gis = Gis::build(
            &matrix(),
            &GisConfig {
                threshold: -1.0,
                max_neighbors: Some(2),
                threads: Some(1),
            },
        );
        for i in 0..gis.num_items() {
            assert!(gis.neighbors(ItemId::from(i)).len() <= 2);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let m = matrix();
        let g1 = Gis::build(
            &m,
            &GisConfig {
                threads: Some(1),
                ..Default::default()
            },
        );
        let g4 = Gis::build(
            &m,
            &GisConfig {
                threads: Some(4),
                ..Default::default()
            },
        );
        for i in m.items() {
            assert_eq!(g1.neighbors(i), g4.neighbors(i));
        }
    }

    #[test]
    fn rebuild_items_matches_full_rebuild() {
        // Start from one matrix, move to another, and verify that an
        // incremental rebuild of the changed items converges to the same
        // GIS a from-scratch build over the new matrix produces.
        let m_old = matrix();
        // new matrix: user 0 flips their rating of item 2
        let mut b = MatrixBuilder::new();
        for (u, i, r) in m_old.triplets() {
            let r = if u == UserId::new(0) && i == ItemId::new(2) {
                5.0
            } else {
                r
            };
            b.push(u, i, r);
        }
        let m_new = b.build().unwrap();
        let config = GisConfig {
            threshold: 0.0,
            max_neighbors: None,
            threads: Some(1),
        };

        let mut incremental = Gis::build(&m_old, &config);
        // item 2 changed; items co-rated with it also shift (their sim to
        // item 2 changes, which rebuild_items patches via reverse edges).
        incremental.rebuild_items(&m_new, &[ItemId::new(2)], &config);

        let fresh = Gis::build(&m_new, &config);
        for i in m_new.items() {
            let a: Vec<_> = incremental.neighbors(i).to_vec();
            let b: Vec<_> = fresh.neighbors(i).to_vec();
            assert_eq!(a.len(), b.len(), "item {i:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.0, y.0, "item {i:?}");
                assert!((x.1 - y.1).abs() < 1e-12, "item {i:?}: {} vs {}", x.1, y.1);
            }
        }
    }

    #[test]
    fn rebuild_items_respects_threshold_and_removal() {
        // After an update that destroys a correlation, the reverse edge
        // must disappear from the partner's list.
        let mut b = MatrixBuilder::new();
        for u in 0..4u32 {
            let r = 1.0 + u as f64;
            b.push(UserId::new(u), ItemId::new(0), r);
            b.push(UserId::new(u), ItemId::new(1), r); // perfectly correlated
            b.push(UserId::new(u), ItemId::new(2), 6.0 - r);
        }
        let m_old = b.build().unwrap();
        let config = GisConfig::default();
        let mut gis = Gis::build(&m_old, &config);
        assert!(gis.get(ItemId::new(0), ItemId::new(1)).is_some());

        // item 1 becomes constant: zero variance, no similarity at all
        let mut b = MatrixBuilder::new();
        for (u, i, r) in m_old.triplets() {
            let r = if i == ItemId::new(1) { 3.0 } else { r };
            b.push(u, i, r);
        }
        let m_new = b.build().unwrap();
        gis.rebuild_items(&m_new, &[ItemId::new(1)], &config);
        assert!(gis.neighbors(ItemId::new(1)).is_empty());
        assert!(gis.get(ItemId::new(0), ItemId::new(1)).is_none());
        assert!(gis.get(ItemId::new(2), ItemId::new(1)).is_none());
    }

    #[test]
    fn stored_pairs_counts_all_lists() {
        let gis = Gis::build(&matrix(), &GisConfig::default());
        let total: usize = (0..5usize)
            .map(|i| gis.neighbors(ItemId::from(i)).len())
            .sum();
        assert_eq!(gis.stored_pairs(), total);
        assert!(total > 0);
    }
}
