//! # cf-similarity — similarity kernels and the Global Item Similarity matrix
//!
//! Implements every similarity function the CFSF paper uses:
//!
//! - [`item_pcc`] — Pearson correlation between two item columns (Eq. 5),
//! - [`user_pcc`] — Pearson correlation between two user rows (Eq. 6),
//! - [`cosine`] / [`adjusted_cosine`] — the VSS alternatives the paper
//!   rejects for GIS (kept for comparison and ablations),
//! - [`significance_weight`] — the overlap-devaluation factor used by the
//!   EMDP baseline,
//! - [`weighted_user_pcc`] — the smoothing-aware user similarity of
//!   Eq. 10/11 (original ratings weigh `ε`, smoothed ones `1-ε`),
//! - [`pair_weight`] — the item×user pair weight of Eq. 13,
//! - [`Gis`] — the Global Item Similarity matrix: per-item neighbor lists
//!   sorted by descending PCC, built in parallel, thresholded and capped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gis;
mod kernels;
mod weighted;

pub use gis::{Gis, GisConfig};
pub use kernels::{
    adjusted_cosine, cosine, item_overlap, item_pcc, significance_weight, spearman_item,
    spearman_user, user_pcc, MIN_OVERLAP,
};
pub use weighted::{pair_weight, smoothing_weight, weighted_user_pcc, weighted_user_pcc_planes};
