//! Smoothing-aware similarity: Eq. 10/11 and the pair weight of Eq. 13.

use cf_matrix::{DenseRatings, ItemId, PlanesView, QuantCell, TypedPlanes, UserId, WeightPlanes};

/// The weighting coefficient `w` of Eq. 11: an original rating counts with
/// weight `ε`, a smoothed (imputed) rating with `1 − ε`.
///
/// The paper's default `w = 0.35` means original ratings weigh 0.35 and
/// smoothed ones 0.65 — smoothed values carry cluster consensus, which on
/// sparse data is more reliable than a single raw rating.
#[inline]
pub fn smoothing_weight(is_original: bool, epsilon: f64) -> f64 {
    if is_original {
        epsilon
    } else {
        1.0 - epsilon
    }
}

/// The smoothing-aware user-user similarity of Eq. 10.
///
/// Ranks candidate user `u` against the active user `u_a`. The sum runs
/// over the items the *active user* has rated (`f : i ∈ I{u_a}`); the
/// candidate contributes its dense smoothed rating for each such item,
/// weighted by [`smoothing_weight`] according to whether the candidate's
/// rating is original or imputed.
///
/// * `active_items` / `active_vals` — the active user's (sparse) profile,
/// * `active_mean` — the active user's mean rating,
/// * `candidate` — the candidate's row in the smoothed dense matrix,
/// * `candidate_mean` — the candidate's mean rating,
/// * `epsilon` — the paper's `w` parameter (default 0.35).
///
/// Returns 0 when either side has no variance over the summation set.
pub fn weighted_user_pcc(
    active_items: &[ItemId],
    active_vals: &[f64],
    active_mean: f64,
    smoothed: &DenseRatings,
    candidate: UserId,
    candidate_mean: f64,
    epsilon: f64,
) -> f64 {
    let row = smoothed.row(candidate);
    let mut dot = 0.0;
    let mut norm_c = 0.0;
    let mut norm_a = 0.0;
    let mut n = 0usize;
    for (&item, &ra) in active_items.iter().zip(active_vals) {
        let rc = row[item.index()];
        if rc.is_nan() {
            // Candidate has neither an original nor a smoothed rating here
            // (possible when smoothing had no signal); skip the term.
            continue;
        }
        let w = smoothing_weight(smoothed.is_original(candidate, item), epsilon);
        let dc = rc - candidate_mean;
        let da = ra - active_mean;
        dot += w * dc * da;
        norm_c += (w * dc) * (w * dc);
        norm_a += da * da;
        n += 1;
    }
    if n < crate::MIN_OVERLAP || norm_c <= 0.0 || norm_a <= 0.0 {
        return 0.0;
    }
    (dot / (norm_c.sqrt() * norm_a.sqrt())).clamp(-1.0, 1.0)
}

/// The serving-fast-path variant of [`weighted_user_pcc`], reading
/// quantized [`WeightPlanes`] instead of the dense matrix + provenance
/// bitmap.
///
/// ε is already folded into the plane's weight LUT (exactly — weights are
/// never quantized), so the per-item loop has no weight select; presence
/// is tested word-at-a-time from the bit-packed plane, and the cell's
/// rating is dequantized in the loop. Only the rating carries quantization
/// error (≤ `step/2` per cell, `step = planes.step()`): the overlap count
/// `n` and the availability decision are exact, and the correlation
/// matches the naive kernel to a tolerance proportional to
/// `step / min|deviation|` (DESIGN.md §6c).
///
/// A candidate whose weighted deviations are indistinguishable from
/// quantization noise (`Σ(w·dc)² ≤ n·(step/2)²`) scores 0: with exact
/// ratings such candidates have zero variance and score 0 too, and
/// without the floor their residual quantization jitter would resolve to
/// a spurious ±1 correlation.
pub fn weighted_user_pcc_planes(
    active_items: &[ItemId],
    active_vals: &[f64],
    active_mean: f64,
    planes: &WeightPlanes,
    candidate: UserId,
    candidate_mean: f64,
) -> f64 {
    match planes.view() {
        PlanesView::U16(v) => pcc_planes_typed(
            active_items,
            active_vals,
            active_mean,
            &v,
            candidate,
            candidate_mean,
        ),
        PlanesView::U8(v) => pcc_planes_typed(
            active_items,
            active_vals,
            active_mean,
            &v,
            candidate,
            candidate_mean,
        ),
    }
}

/// Monomorphized inner loop of [`weighted_user_pcc_planes`].
fn pcc_planes_typed<C: QuantCell>(
    active_items: &[ItemId],
    active_vals: &[f64],
    active_mean: f64,
    planes: &TypedPlanes<'_, C>,
    candidate: UserId,
    candidate_mean: f64,
) -> f64 {
    let cells = planes.cell_row(candidate);
    let dq = planes.dq();
    let mut dot = 0.0;
    let mut norm_c = 0.0;
    let mut norm_a = 0.0;
    let mut n = 0u64;
    for (&item, &ra) in active_items.iter().zip(active_vals) {
        let (w, wr, p) = dq.triple(cells[item.index()]);
        let wdc = wr - w * candidate_mean;
        let da = ra - active_mean;
        dot += wdc * da;
        norm_c += wdc * wdc;
        norm_a += (p as f64) * (da * da);
        n += p;
    }
    // Quantization noise floor: each w·dc carries absolute error ≤ step/2
    // (w ≤ 1), so a sum of squares at or below n·(step/2)² is pure noise.
    let half = dq.step() * 0.5;
    let floor = (n as f64) * half * half;
    if (n as usize) < crate::MIN_OVERLAP || norm_c <= floor || norm_a <= 0.0 {
        return 0.0;
    }
    (dot / (norm_c.sqrt() * norm_a.sqrt())).clamp(-1.0, 1.0)
}

/// The pair weight of Eq. 13: how much the rating a like-minded user `u_t`
/// gave a similar item `i_s` counts when predicting `(u_b, i_a)`:
///
/// `sim((i_s,i_a),(u_t,u_b)) = sim_i · sim_u / sqrt(sim_i² + sim_u²)`.
///
/// This is half the harmonic-style mean of the two similarities: it is
/// large only when *both* the item and the user are similar, and it
/// vanishes when either similarity vanishes. Returns 0 when both inputs
/// are 0 (the formula is 0/0 there).
#[inline]
pub fn pair_weight(item_sim: f64, user_sim: f64) -> f64 {
    let denom = (item_sim * item_sim + user_sim * user_sim).sqrt();
    if denom <= f64::EPSILON {
        0.0
    } else {
        item_sim * user_sim / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::{ItemId, UserId};

    #[test]
    fn smoothing_weight_splits_epsilon() {
        assert_eq!(smoothing_weight(true, 0.35), 0.35);
        assert!((smoothing_weight(false, 0.35) - 0.65).abs() < 1e-12);
        assert_eq!(smoothing_weight(true, 1.0), 1.0);
        assert_eq!(smoothing_weight(false, 1.0), 0.0);
    }

    #[test]
    fn pair_weight_vanishes_when_either_side_vanishes() {
        assert_eq!(pair_weight(0.0, 0.9), 0.0);
        assert_eq!(pair_weight(0.9, 0.0), 0.0);
        assert_eq!(pair_weight(0.0, 0.0), 0.0);
    }

    #[test]
    fn pair_weight_of_equal_sims_is_sim_over_sqrt2() {
        let w = pair_weight(0.8, 0.8);
        assert!((w - 0.8 / std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn pair_weight_is_symmetric_and_sign_respecting() {
        assert!((pair_weight(0.5, 0.7) - pair_weight(0.7, 0.5)).abs() < 1e-12);
        // one negative similarity flips the sign
        assert!(pair_weight(-0.5, 0.7) < 0.0);
        // two negatives make a positive (agreeing dissimilarity)
        assert!(pair_weight(-0.5, -0.7) > 0.0);
    }

    #[test]
    fn pair_weight_bounded_by_min_magnitude() {
        // |w| ≤ min(|a|, |b|) always
        for &(a, b) in &[(0.9, 0.1), (0.3, 0.8), (1.0, 1.0), (-0.6, 0.2)] {
            let w: f64 = pair_weight(a, b);
            assert!(w.abs() <= f64::min(f64::abs(a), f64::abs(b)) + 1e-12);
        }
    }

    /// Builds a 2-user dense matrix: active profile on 3 items, candidate
    /// row fully populated with mixed provenance.
    fn fixture() -> (Vec<ItemId>, Vec<f64>, DenseRatings) {
        let active_items = vec![ItemId::new(0), ItemId::new(1), ItemId::new(2)];
        let active_vals = vec![5.0, 3.0, 1.0];
        let mut d = DenseRatings::new(1, 3);
        let cand = UserId::new(0);
        d.set_original(cand, ItemId::new(0), 4.0);
        d.set_smoothed(cand, ItemId::new(1), 3.0);
        d.set_original(cand, ItemId::new(2), 2.0);
        (active_items, active_vals, d)
    }

    #[test]
    fn weighted_pcc_detects_agreement() {
        let (items, vals, d) = fixture();
        let s = weighted_user_pcc(&items, &vals, 3.0, &d, UserId::new(0), 3.0, 0.35);
        assert!(s > 0.9, "profiles move together, got {s}");
    }

    #[test]
    fn weighted_pcc_detects_disagreement() {
        let (items, mut vals, d) = fixture();
        vals.reverse(); // active now rates 1,3,5 against candidate's 4,3,2
        let s = weighted_user_pcc(&items, &vals, 3.0, &d, UserId::new(0), 3.0, 0.35);
        assert!(s < -0.9, "profiles move oppositely, got {s}");
    }

    #[test]
    fn weighted_pcc_epsilon_one_ignores_smoothed_term_weighting() {
        // With ε = 1 smoothed entries get weight 0: the i1 term drops out
        // of the numerator entirely.
        let (items, vals, d) = fixture();
        let s_full = weighted_user_pcc(&items, &vals, 3.0, &d, UserId::new(0), 3.0, 1.0);
        // Only i0 and i2 contribute; they still agree perfectly.
        assert!(s_full > 0.9);
    }

    #[test]
    fn weighted_pcc_zero_variance_returns_zero() {
        let items = vec![ItemId::new(0), ItemId::new(1)];
        let vals = vec![3.0, 3.0]; // active has no variance
        let mut d = DenseRatings::new(1, 2);
        d.set_original(UserId::new(0), ItemId::new(0), 1.0);
        d.set_original(UserId::new(0), ItemId::new(1), 5.0);
        let s = weighted_user_pcc(&items, &vals, 3.0, &d, UserId::new(0), 3.0, 0.35);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn weighted_pcc_skips_absent_candidate_cells() {
        let items = vec![ItemId::new(0), ItemId::new(1), ItemId::new(2)];
        let vals = vec![5.0, 1.0, 3.0];
        let mut d = DenseRatings::new(1, 3);
        d.set_original(UserId::new(0), ItemId::new(0), 5.0);
        d.set_original(UserId::new(0), ItemId::new(1), 1.0);
        // item 2 absent for candidate
        let s = weighted_user_pcc(&items, &vals, 3.0, &d, UserId::new(0), 3.0, 0.35);
        assert!(s > 0.9);
    }

    #[test]
    fn planes_variant_matches_naive_on_fixture() {
        let (items, vals, d) = fixture();
        for eps in [0.0, 0.35, 1.0] {
            let planes = WeightPlanes::from_dense(&d, eps);
            let naive = weighted_user_pcc(&items, &vals, 3.0, &d, UserId::new(0), 3.0, eps);
            let fused = weighted_user_pcc_planes(&items, &vals, 3.0, &planes, UserId::new(0), 3.0);
            // Fixture deviations are ≥ 1.0, so the correlation error is
            // O(step) (see DESIGN.md §6c); 10·step leaves margin.
            let tol = 10.0 * planes.step() + 1e-9;
            assert!(
                (naive - fused).abs() < tol,
                "eps={eps}: naive={naive}, fused={fused}"
            );
        }
    }

    #[test]
    fn planes_variant_tracks_naive_at_u8_precision() {
        use cf_matrix::PlanePrecision;
        let (items, vals, d) = fixture();
        for eps in [0.0, 0.35, 1.0] {
            let planes = WeightPlanes::from_dense_with(&d, eps, PlanePrecision::U8);
            let naive = weighted_user_pcc(&items, &vals, 3.0, &d, UserId::new(0), 3.0, eps);
            let fused = weighted_user_pcc_planes(&items, &vals, 3.0, &planes, UserId::new(0), 3.0);
            // u8 step on the [2,4] fixture span is 2/127 ≈ 0.0157; the
            // fixture's unit-scale deviations keep the error O(step).
            let tol = 10.0 * planes.step() + 1e-9;
            assert!(
                (naive - fused).abs() < tol,
                "eps={eps}: naive={naive}, fused={fused}, tol={tol}"
            );
        }
    }

    #[test]
    fn planes_variant_zeroes_quantization_noise_candidates() {
        // Candidate rated everything exactly at their mean: the naive
        // kernel sees zero variance and returns 0. Quantization would
        // leave ±step/2 jitter that resolves to a spurious ±1 without the
        // noise floor.
        let items = [ItemId::new(0), ItemId::new(1), ItemId::new(2)];
        let vals = [5.0, 1.0, 3.0];
        let mut d = DenseRatings::new(1, 3);
        // Mixed magnitudes force a nonzero quantization step, while the
        // candidate's deviations from mean 3.3 are all zero.
        d.set_original(UserId::new(0), ItemId::new(0), 3.3);
        d.set_original(UserId::new(0), ItemId::new(1), 3.3);
        d.set_smoothed(UserId::new(0), ItemId::new(2), 1.0);
        for precision in [
            cf_matrix::PlanePrecision::U16,
            cf_matrix::PlanePrecision::U8,
        ] {
            let planes = WeightPlanes::from_dense_with(&d, 0.35, precision);
            assert!(planes.step() > 0.0);
            let naive = weighted_user_pcc(
                &[ItemId::new(0), ItemId::new(1)],
                &vals[..2],
                3.0,
                &d,
                UserId::new(0),
                3.3,
                0.35,
            );
            assert_eq!(naive, 0.0);
            let fused = weighted_user_pcc_planes(
                &items[..2],
                &vals[..2],
                3.0,
                &planes,
                UserId::new(0),
                3.3,
            );
            assert_eq!(fused, 0.0, "noise floor must zero {precision:?}");
        }
    }

    #[test]
    fn planes_variant_skips_absent_candidate_cells() {
        let items = vec![ItemId::new(0), ItemId::new(1), ItemId::new(2)];
        let vals = vec![5.0, 1.0, 3.0];
        let mut d = DenseRatings::new(1, 3);
        d.set_original(UserId::new(0), ItemId::new(0), 5.0);
        d.set_original(UserId::new(0), ItemId::new(1), 1.0);
        // item 2 absent for candidate: must not count toward the overlap
        let planes = WeightPlanes::from_dense(&d, 0.35);
        let s = weighted_user_pcc_planes(&items, &vals, 3.0, &planes, UserId::new(0), 3.0);
        assert!(s > 0.9);
        // a single present cell is below MIN_OVERLAP
        let mut one = DenseRatings::new(1, 3);
        one.set_original(UserId::new(0), ItemId::new(0), 5.0);
        let planes = WeightPlanes::from_dense(&one, 0.35);
        assert_eq!(
            weighted_user_pcc_planes(&items, &vals, 3.0, &planes, UserId::new(0), 3.0),
            0.0
        );
    }

    #[test]
    fn weighted_pcc_single_overlap_returns_zero() {
        let items = vec![ItemId::new(0)];
        let vals = vec![5.0];
        let mut d = DenseRatings::new(1, 1);
        d.set_original(UserId::new(0), ItemId::new(0), 5.0);
        let s = weighted_user_pcc(&items, &vals, 3.0, &d, UserId::new(0), 3.0, 0.35);
        assert_eq!(s, 0.0);
    }
}
