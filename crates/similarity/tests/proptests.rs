//! Property-based tests for the similarity kernels and the GIS.

use cf_matrix::{
    DenseRatings, ItemId, MatrixBuilder, PlanePrecision, RatingMatrix, UserId, WeightPlanes,
};
use cf_similarity::{
    adjusted_cosine, cosine, item_pcc, pair_weight, user_pcc, weighted_user_pcc,
    weighted_user_pcc_planes, Gis, GisConfig,
};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = RatingMatrix> {
    proptest::collection::btree_map(
        (0u32..15, 0u32..20),
        (1u32..=5).prop_map(|r| r as f64),
        2..120,
    )
    .prop_map(|m| {
        let mut b = MatrixBuilder::with_dims(15, 20);
        for ((u, i), r) in m {
            b.push(UserId::new(u), ItemId::new(i), r);
        }
        b.build().expect("valid")
    })
}

proptest! {
    #[test]
    fn kernels_are_bounded_and_symmetric(m in arb_matrix()) {
        for a in 0..m.num_items().min(8) {
            for b in 0..m.num_items().min(8) {
                let (a, b) = (ItemId::from(a), ItemId::from(b));
                for f in [item_pcc, cosine, adjusted_cosine] {
                    let ab = f(&m, a, b);
                    let ba = f(&m, b, a);
                    prop_assert!((-1.0..=1.0).contains(&ab), "{ab}");
                    prop_assert!((ab - ba).abs() < 1e-12);
                }
            }
        }
        for a in 0..m.num_users().min(8) {
            for b in 0..m.num_users().min(8) {
                let (a, b) = (UserId::from(a), UserId::from(b));
                let ab = user_pcc(&m, a, b);
                prop_assert!((-1.0..=1.0).contains(&ab));
                prop_assert!((ab - user_pcc(&m, b, a)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gis_lists_are_sorted_thresholded_and_kernel_consistent(m in arb_matrix()) {
        let threshold = 0.1;
        let gis = Gis::build(&m, &GisConfig {
            threshold,
            max_neighbors: None,
            threads: Some(2),
        });
        for i in m.items() {
            let list = gis.neighbors(i);
            prop_assert!(list.windows(2).all(|w| w[0].1 >= w[1].1));
            for &(j, s) in list {
                prop_assert!(s > threshold);
                prop_assert!((s - item_pcc(&m, i, j)).abs() < 1e-9);
                prop_assert!(j != i, "self-neighbor");
            }
        }
    }

    #[test]
    fn gis_build_is_thread_count_invariant(m in arb_matrix()) {
        let cfg1 = GisConfig { threads: Some(1), ..GisConfig::default() };
        let cfg4 = GisConfig { threads: Some(4), ..GisConfig::default() };
        let g1 = Gis::build(&m, &cfg1);
        let g4 = Gis::build(&m, &cfg4);
        for i in m.items() {
            prop_assert_eq!(g1.neighbors(i), g4.neighbors(i));
        }
    }

    #[test]
    fn fused_plane_pcc_matches_naive_kernel(m in arb_matrix(), smooth_seed in 0u64..4) {
        // Densify with a mix of original and pseudo-smoothed cells, then
        // compare the fused-plane kernel against the naive one for every
        // user pair across the ε extremes and the paper default.
        //
        // The planes store candidate ratings quantized (DESIGN.md §6c), so
        // the fused kernel is only step-close to the f64 naive one. With
        // integer active-side ratings and candidate deviations that are
        // either 0 (floored to a 0 correlation) or ≥ 1/(10·q) = 0.005, a
        // u16 step (≤ ~1.2e-4 on the 1..=5 span) perturbs the correlation
        // by well under 3e-2; the bound below is that worst-corner margin,
        // not a measured gap. U8 steps are too coarse for a naive-closeness
        // bound — boundedness is asserted instead.
        let mut dense = DenseRatings::from_sparse(&m);
        for u in 0..m.num_users() {
            for i in 0..m.num_items() {
                let (u, i) = (UserId::from(u), ItemId::from(i));
                if dense.get(u, i).is_none()
                    && !(u.index() + i.index() + smooth_seed as usize).is_multiple_of(3)
                {
                    dense.set_smoothed(u, i, 1.0 + ((u.index() * 7 + i.index() * 13) % 40) as f64 / 10.0);
                }
            }
        }
        for eps in [0.0, 0.35, 1.0] {
            let planes = WeightPlanes::from_dense(&dense, eps);
            let planes_u8 =
                WeightPlanes::from_dense_with(&dense, eps, PlanePrecision::U8);
            for a in 0..m.num_users().min(6) {
                let active = UserId::from(a);
                let (items, vals) = m.user_row(active);
                if items.is_empty() {
                    continue;
                }
                let mean_a = m.user_mean(active);
                for c in 0..m.num_users().min(10) {
                    let cand = UserId::from(c);
                    let mean_c = m.user_mean(cand);
                    let naive = weighted_user_pcc(items, vals, mean_a, &dense, cand, mean_c, eps);
                    let fused = weighted_user_pcc_planes(items, vals, mean_a, &planes, cand, mean_c);
                    prop_assert!(
                        (naive - fused).abs() <= 3e-2,
                        "eps={}, a={}, c={}: naive={}, fused={}", eps, a, c, naive, fused
                    );
                    let coarse =
                        weighted_user_pcc_planes(items, vals, mean_a, &planes_u8, cand, mean_c);
                    prop_assert!(
                        (-1.0..=1.0).contains(&coarse),
                        "u8 out of range: eps={}, a={}, c={}: {}", eps, a, c, coarse
                    );
                }
            }
        }
    }

    #[test]
    fn pair_weight_is_bounded_by_min_magnitude(a in -1.0f64..=1.0, b in -1.0f64..=1.0) {
        let w = pair_weight(a, b);
        prop_assert!(w.is_finite());
        prop_assert!(w.abs() <= a.abs().min(b.abs()) + 1e-12);
        // sign(w) = sign(a*b) unless w == 0
        if w != 0.0 {
            prop_assert_eq!(w.signum(), (a * b).signum());
        }
    }
}
