//! Property-based tests for the similarity kernels and the GIS.

use cf_matrix::{ItemId, MatrixBuilder, RatingMatrix, UserId};
use cf_similarity::{adjusted_cosine, cosine, item_pcc, pair_weight, user_pcc, Gis, GisConfig};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = RatingMatrix> {
    proptest::collection::btree_map(
        (0u32..15, 0u32..20),
        (1u32..=5).prop_map(|r| r as f64),
        2..120,
    )
    .prop_map(|m| {
        let mut b = MatrixBuilder::with_dims(15, 20);
        for ((u, i), r) in m {
            b.push(UserId::new(u), ItemId::new(i), r);
        }
        b.build().expect("valid")
    })
}

proptest! {
    #[test]
    fn kernels_are_bounded_and_symmetric(m in arb_matrix()) {
        for a in 0..m.num_items().min(8) {
            for b in 0..m.num_items().min(8) {
                let (a, b) = (ItemId::from(a), ItemId::from(b));
                for f in [item_pcc, cosine, adjusted_cosine] {
                    let ab = f(&m, a, b);
                    let ba = f(&m, b, a);
                    prop_assert!((-1.0..=1.0).contains(&ab), "{ab}");
                    prop_assert!((ab - ba).abs() < 1e-12);
                }
            }
        }
        for a in 0..m.num_users().min(8) {
            for b in 0..m.num_users().min(8) {
                let (a, b) = (UserId::from(a), UserId::from(b));
                let ab = user_pcc(&m, a, b);
                prop_assert!((-1.0..=1.0).contains(&ab));
                prop_assert!((ab - user_pcc(&m, b, a)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gis_lists_are_sorted_thresholded_and_kernel_consistent(m in arb_matrix()) {
        let threshold = 0.1;
        let gis = Gis::build(&m, &GisConfig {
            threshold,
            max_neighbors: None,
            threads: Some(2),
        });
        for i in m.items() {
            let list = gis.neighbors(i);
            prop_assert!(list.windows(2).all(|w| w[0].1 >= w[1].1));
            for &(j, s) in list {
                prop_assert!(s > threshold);
                prop_assert!((s - item_pcc(&m, i, j)).abs() < 1e-9);
                prop_assert!(j != i, "self-neighbor");
            }
        }
    }

    #[test]
    fn gis_build_is_thread_count_invariant(m in arb_matrix()) {
        let cfg1 = GisConfig { threads: Some(1), ..GisConfig::default() };
        let cfg4 = GisConfig { threads: Some(4), ..GisConfig::default() };
        let g1 = Gis::build(&m, &cfg1);
        let g4 = Gis::build(&m, &cfg4);
        for i in m.items() {
            prop_assert_eq!(g1.neighbors(i), g4.neighbors(i));
        }
    }

    #[test]
    fn pair_weight_is_bounded_by_min_magnitude(a in -1.0f64..=1.0, b in -1.0f64..=1.0) {
        let w = pair_weight(a, b);
        prop_assert!(w.is_finite());
        prop_assert!(w.abs() <= a.abs().min(b.abs()) + 1e-12);
        // sign(w) = sign(a*b) unless w == 0
        if w != 0.0 {
            prop_assert_eq!(w.signum(), (a * b).signum());
        }
    }
}
