//! Property-based tests for clustering and smoothing invariants.

use cf_cluster::{KMeans, KMeansConfig, Smoother};
use cf_matrix::{ItemId, MatrixBuilder, RatingMatrix, UserId};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = RatingMatrix> {
    proptest::collection::btree_map(
        (0u32..25, 0u32..20),
        (1u32..=5).prop_map(|r| r as f64),
        5..200,
    )
    .prop_map(|m| {
        let mut b = MatrixBuilder::with_dims(25, 20);
        for ((u, i), r) in m {
            b.push(UserId::new(u), ItemId::new(i), r);
        }
        b.build().expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kmeans_partitions_all_users(m in arb_matrix(), k in 1usize..8, seed in 0u64..50) {
        let a = KMeans::fit(&m, &KMeansConfig { k, seed, ..Default::default() });
        prop_assert!(a.k() >= 1 && a.k() <= k.max(1));
        let total: usize = a.sizes().iter().sum();
        prop_assert_eq!(total, m.num_users());
        for u in m.users() {
            let c = a.cluster_of(u);
            prop_assert!(c < a.k());
            prop_assert!(a.members(c).contains(&u));
        }
    }

    #[test]
    fn smoothing_completes_the_matrix_and_preserves_originals(
        m in arb_matrix(),
        k in 1usize..6,
    ) {
        let clusters = KMeans::fit(&m, &KMeansConfig { k, ..Default::default() });
        let s = Smoother::smooth(&m, &clusters, Some(2));
        prop_assert!(s.dense.is_complete());
        for (u, i, r) in m.triplets() {
            prop_assert_eq!(s.dense.get(u, i), Some(r));
            prop_assert!(s.dense.is_original(u, i));
        }
        // imputation accounting covers exactly the missing cells
        let missing = m.num_users() * m.num_items() - m.num_ratings();
        prop_assert_eq!(s.cells_from_cluster + s.cells_from_fallback, missing);
        // everything on scale
        for u in m.users() {
            for v in s.dense.row(u) {
                prop_assert!((1.0..=5.0).contains(v));
            }
        }
    }

    #[test]
    fn smoothed_deviations_are_rating_deviation_bounded(m in arb_matrix(), k in 1usize..5) {
        let clusters = KMeans::fit(&m, &KMeansConfig { k, ..Default::default() });
        let s = Smoother::smooth(&m, &clusters, Some(1));
        // |Δr(C,i)| can never exceed the full rating span
        for c in 0..s.num_clusters() {
            for i in m.items() {
                if let Some(d) = s.deviation(c, i) {
                    prop_assert!(d.abs() <= 4.0 + 1e-9, "Δ = {d}");
                }
            }
        }
    }
}
