//! K-means over user profiles under a PCC-derived similarity (§IV-C).
//!
//! The paper clusters users so that (a) ratings can be smoothed within
//! each cluster and (b) the online phase can restrict its like-minded-user
//! search to the most promising clusters. Distance is *similarity*, not
//! Euclidean: a user joins the cluster whose centroid its ratings
//! correlate with most strongly (Eq. 6 applied to user-vs-centroid).

use cf_matrix::{RatingMatrix, UserId};
use cf_parallel::par_map;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How initial centroids are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KMeansInit {
    /// `k` distinct users drawn uniformly (seeded). The paper doesn't
    /// specify its initialization; this is the classic default.
    #[default]
    Random,
    /// K-means++-style spreading adapted to the similarity metric: each
    /// next seed is the user *least similar* to its closest existing
    /// seed (farthest-first under 1−PCC). Deterministic given the seed
    /// of the first pick; tends to cover all taste groups even when
    /// `k` is small.
    PlusPlus,
}

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters (`C` in the paper; default 30).
    pub k: usize,
    /// Iteration cap; K-means on MovieLens-scale data converges in a
    /// handful of rounds.
    pub max_iterations: usize,
    /// RNG seed for centroid initialization — same seed, same clustering.
    pub seed: u64,
    /// Centroid initialization strategy.
    pub init: KMeansInit,
    /// Worker threads (`None` = auto).
    pub threads: Option<usize>,
    /// Centroid-drift convergence tolerance: the fit also stops once no
    /// centroid mean moved by more than `tol` between rounds, even if a
    /// few boundary users are still flip-flopping between equidistant
    /// clusters (exact assignment stability always converges too).
    pub tol: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 30,
            max_iterations: 20,
            seed: 42,
            init: KMeansInit::Random,
            threads: None,
            tol: 1e-9,
        }
    }
}

/// A centroid: per-item average rating over the cluster's members, defined
/// only for items at least one member rated.
#[derive(Debug, Clone)]
struct Centroid {
    /// Dense per-item mean rating, `NaN` where undefined.
    values: Vec<f64>,
    /// Mean of the defined values (for PCC centering).
    mean: f64,
}

impl Centroid {
    fn from_members(m: &RatingMatrix, members: &[UserId]) -> Self {
        let q = m.num_items();
        let mut sum = vec![0.0f64; q];
        let mut count = vec![0u32; q];
        for &u in members {
            for (i, r) in m.user_ratings(u) {
                sum[i.index()] += r;
                count[i.index()] += 1;
            }
        }
        let mut total = 0.0;
        let mut defined = 0usize;
        let values: Vec<f64> = (0..q)
            .map(|i| {
                if count[i] > 0 {
                    let v = sum[i] / count[i] as f64;
                    total += v;
                    defined += 1;
                    v
                } else {
                    f64::NAN
                }
            })
            .collect();
        let mean = if defined > 0 {
            total / defined as f64
        } else {
            0.0
        };
        Self { values, mean }
    }

    fn from_single_user(m: &RatingMatrix, u: UserId) -> Self {
        let q = m.num_items();
        let mut values = vec![f64::NAN; q];
        for (i, r) in m.user_ratings(u) {
            values[i.index()] = r;
        }
        Self {
            values,
            mean: m.user_mean(u),
        }
    }

    /// PCC between a user profile and this centroid over the items both
    /// define (Eq. 6 with the centroid standing in for the second user).
    fn similarity(&self, m: &RatingMatrix, u: UserId) -> f64 {
        let (items, vals) = m.user_row(u);
        let user_mean = m.user_mean(u);
        let mut dot = 0.0;
        let mut nu = 0.0;
        let mut nc = 0.0;
        let mut n = 0usize;
        for (&i, &r) in items.iter().zip(vals) {
            let c = self.values[i.index()];
            if c.is_nan() {
                continue;
            }
            let du = r - user_mean;
            let dc = c - self.mean;
            dot += du * dc;
            nu += du * du;
            nc += dc * dc;
            n += 1;
        }
        if n < 2 || nu <= 0.0 || nc <= 0.0 {
            return 0.0;
        }
        (dot / (nu.sqrt() * nc.sqrt())).clamp(-1.0, 1.0)
    }
}

/// The result of clustering: a cluster id per user plus member lists.
#[derive(Debug, Clone)]
pub struct ClusterAssignment {
    /// `assignment[u]` = cluster index of user `u`.
    assignment: Vec<u32>,
    /// `members[c]` = users in cluster `c`, ascending user id.
    members: Vec<Vec<UserId>>,
    /// Iterations actually run before convergence (or the cap).
    pub iterations: usize,
    /// Whether assignments reached a fixed point within the cap.
    pub converged: bool,
}

impl ClusterAssignment {
    /// Reassembles an assignment from a per-user cluster-id vector — the
    /// deserialization path for model persistence. Panics if any id is
    /// `>= k` (a corrupt assignment must not silently mis-index).
    pub fn from_assignment(
        assignment: Vec<u32>,
        k: usize,
        iterations: usize,
        converged: bool,
    ) -> Self {
        assert!(k > 0, "k must be positive");
        let mut members: Vec<Vec<UserId>> = vec![Vec::new(); k];
        for (ui, &c) in assignment.iter().enumerate() {
            assert!(
                (c as usize) < k,
                "user {ui} assigned to cluster {c} >= k={k}"
            );
            members[c as usize].push(UserId::from(ui));
        }
        Self {
            assignment,
            members,
            iterations,
            converged,
        }
    }

    /// The raw per-user cluster-id vector (serialization counterpart of
    /// [`Self::from_assignment`]).
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.members.len()
    }

    /// The cluster user `u` belongs to.
    #[inline]
    pub fn cluster_of(&self, u: UserId) -> usize {
        self.assignment[u.index()] as usize
    }

    /// Members of cluster `c`, ascending user id.
    #[inline]
    pub fn members(&self, c: usize) -> &[UserId] {
        &self.members[c]
    }

    /// Sizes of all clusters.
    pub fn sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }
}

/// K-means engine. Construct via [`KMeans::fit`].
pub struct KMeans;

impl KMeans {
    /// Clusters all users of `m` that have at least one rating. Users with
    /// empty profiles are deterministically spread round-robin across
    /// clusters (they carry no signal either way; leaving them out would
    /// make downstream indexing partial).
    pub fn fit(m: &RatingMatrix, config: &KMeansConfig) -> ClusterAssignment {
        cf_obs::time_scope!("offline.kmeans.fit_ns");
        let p = m.num_users();
        assert!(config.k > 0, "k must be positive");
        let k = config.k.min(p.max(1));
        let threads = cf_parallel::effective_threads(config.threads);

        // Seed centroids with k distinct users that have non-empty
        // profiles, chosen reproducibly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut active: Vec<UserId> = m.users().filter(|&u| m.user_count(u) > 0).collect();
        active.shuffle(&mut rng);
        let seeds: Vec<UserId> = match config.init {
            KMeansInit::Random => active.iter().copied().take(k).collect(),
            KMeansInit::PlusPlus => plus_plus_seeds(m, &active, k, threads),
        };
        let k = seeds.len().max(1);
        let mut centroids: Vec<Centroid> = seeds
            .iter()
            .map(|&u| Centroid::from_single_user(m, u))
            .collect();
        if centroids.is_empty() {
            // Degenerate matrix (no active users at all).
            centroids.push(Centroid {
                values: vec![f64::NAN; m.num_items()],
                mean: 0.0,
            });
        }

        let mut assignment: Vec<u32> = (0..p).map(|u| (u % k) as u32).collect();
        let mut iterations = 0;
        let mut converged = false;

        for iter in 0..config.max_iterations {
            let iter_start = std::time::Instant::now();
            iterations = iter + 1;
            // Assignment step (parallel over users). Ties break toward the
            // lowest cluster index; empty profiles keep the round-robin slot.
            let next: Vec<u32> = par_map(p, threads, |ui| {
                let u = UserId::from(ui);
                if m.user_count(u) == 0 {
                    return (ui % k) as u32;
                }
                let mut best = 0usize;
                let mut best_sim = f64::NEG_INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let s = centroid.similarity(m, u);
                    if s > best_sim {
                        best_sim = s;
                        best = c;
                    }
                }
                best as u32
            });

            let changed = next != assignment;
            assignment = next;
            if !changed {
                cf_obs::histogram!("offline.kmeans.iter_ns").record_duration(iter_start.elapsed());
                converged = true;
                break;
            }

            // Update step: recompute centroids from members; repair empty
            // clusters by stealing the worst-fitting user of the largest
            // cluster so k stays constant.
            let mut members: Vec<Vec<UserId>> = vec![Vec::new(); k];
            for (ui, &c) in assignment.iter().enumerate() {
                members[c as usize].push(UserId::from(ui));
            }
            for c in 0..k {
                if members[c].is_empty() {
                    let donor = (0..k).max_by_key(|&d| members[d].len()).expect("k >= 1");
                    if members[donor].len() > 1 {
                        let worst = *members[donor]
                            .iter()
                            .min_by(|&&a, &&b| {
                                centroids[donor]
                                    .similarity(m, a)
                                    .partial_cmp(&centroids[donor].similarity(m, b))
                                    .expect("similarities are finite")
                            })
                            .expect("donor non-empty");
                        members[donor].retain(|&u| u != worst);
                        members[c].push(worst);
                        assignment[worst.index()] = c as u32;
                    }
                }
            }
            let prev_means: Vec<f64> = centroids.iter().map(|c| c.mean).collect();
            centroids = par_map(k, threads, |c| Centroid::from_members(m, &members[c]));
            cf_obs::histogram!("offline.kmeans.iter_ns").record_duration(iter_start.elapsed());
            // Tolerance-based convergence: when every centroid mean is
            // numerically stationary the clustering has settled even if
            // boundary ties keep a user oscillating. NaN drift (a still-
            // empty centroid) compares false and keeps iterating.
            let drift = centroids
                .iter()
                .zip(&prev_means)
                .map(|(c, &prev)| (c.mean - prev).abs())
                .fold(0.0_f64, f64::max);
            if drift <= config.tol {
                converged = true;
                break;
            }
        }

        cf_obs::histogram!("offline.kmeans.iterations").record(iterations as u64);
        if converged {
            cf_obs::counter!("offline.kmeans.converged").inc();
        } else {
            cf_obs::counter!("offline.kmeans.hit_iteration_cap").inc();
        }

        let mut members: Vec<Vec<UserId>> = vec![Vec::new(); k];
        for (ui, &c) in assignment.iter().enumerate() {
            members[c as usize].push(UserId::from(ui));
        }

        ClusterAssignment {
            assignment,
            members,
            iterations,
            converged,
        }
    }
}

/// Farthest-first seeding under the 1−PCC "distance": the first seed is
/// the (shuffled) first active user, each next seed maximizes the
/// distance to its nearest already-chosen seed.
fn plus_plus_seeds(
    m: &RatingMatrix,
    shuffled_active: &[UserId],
    k: usize,
    threads: usize,
) -> Vec<UserId> {
    let Some(&first) = shuffled_active.first() else {
        return Vec::new();
    };
    let mut seeds = vec![first];
    // min_dist[idx] = distance of shuffled_active[idx] to nearest seed
    let mut min_dist: Vec<f64> = par_map(shuffled_active.len(), threads, |idx| {
        1.0 - cf_similarity::user_pcc(m, shuffled_active[idx], first)
    });
    while seeds.len() < k.min(shuffled_active.len()) {
        let (best_idx, _) = min_dist
            .iter()
            .enumerate()
            .filter(|&(idx, _)| !seeds.contains(&shuffled_active[idx]))
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("distances are finite"))
            .expect("candidates remain");
        let chosen = shuffled_active[best_idx];
        seeds.push(chosen);
        let updates: Vec<f64> = par_map(shuffled_active.len(), threads, |idx| {
            1.0 - cf_similarity::user_pcc(m, shuffled_active[idx], chosen)
        });
        for (d, u) in min_dist.iter_mut().zip(updates) {
            if u < *d {
                *d = u;
            }
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::{ItemId, MatrixBuilder};

    /// Two obvious taste groups: users 0–3 love items 0–2 and hate 3–5;
    /// users 4–7 the reverse.
    fn two_blocks() -> RatingMatrix {
        let mut b = MatrixBuilder::new();
        for u in 0..8u32 {
            let loves_low = u < 4;
            for i in 0..6u32 {
                let hi = (5 + (u % 2)) as f64 - 1.0; // 4 or 5
                let lo = 1.0 + (u % 2) as f64; // 1 or 2
                let r = if (i < 3) == loves_low { hi } else { lo };
                b.push(UserId::new(u), ItemId::new(i), r);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn recovers_planted_clusters() {
        let m = two_blocks();
        let a = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 2,
                max_iterations: 20,
                seed: 7,
                threads: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(a.k(), 2);
        let c0 = a.cluster_of(UserId::new(0));
        for u in 1..4u32 {
            assert_eq!(a.cluster_of(UserId::new(u)), c0, "user {u}");
        }
        let c4 = a.cluster_of(UserId::new(4));
        assert_ne!(c0, c4);
        for u in 5..8u32 {
            assert_eq!(a.cluster_of(UserId::new(u)), c4, "user {u}");
        }
        assert!(a.converged);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m = two_blocks();
        let cfg = KMeansConfig {
            k: 3,
            seed: 11,
            ..Default::default()
        };
        let a = KMeans::fit(&m, &cfg);
        let b = KMeans::fit(&m, &cfg);
        for u in m.users() {
            assert_eq!(a.cluster_of(u), b.cluster_of(u));
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let m = two_blocks();
        let a = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 2,
                seed: 3,
                threads: Some(1),
                ..Default::default()
            },
        );
        let b = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 2,
                seed: 3,
                threads: Some(4),
                ..Default::default()
            },
        );
        for u in m.users() {
            assert_eq!(a.cluster_of(u), b.cluster_of(u));
        }
    }

    #[test]
    fn k_larger_than_user_count_is_clamped() {
        let m = two_blocks();
        let a = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 100,
                ..Default::default()
            },
        );
        assert!(a.k() <= 8);
        for u in m.users() {
            assert!(a.cluster_of(u) < a.k());
        }
    }

    #[test]
    fn members_partition_all_users() {
        let m = two_blocks();
        let a = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        let total: usize = a.sizes().iter().sum();
        assert_eq!(total, m.num_users());
        for c in 0..a.k() {
            for &u in a.members(c) {
                assert_eq!(a.cluster_of(u), c);
            }
            // member lists are sorted ascending
            assert!(a.members(c).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_profile_users_are_assigned_somewhere() {
        let mut b = MatrixBuilder::with_dims(5, 3);
        b.push(UserId::new(0), ItemId::new(0), 5.0);
        b.push(UserId::new(0), ItemId::new(1), 1.0);
        b.push(UserId::new(1), ItemId::new(0), 4.0);
        b.push(UserId::new(1), ItemId::new(1), 2.0);
        // users 2..4 rate nothing
        let m = b.build().unwrap();
        let a = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        for u in m.users() {
            assert!(a.cluster_of(u) < a.k());
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let m = two_blocks();
        let _ = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn plus_plus_also_recovers_planted_clusters() {
        let m = two_blocks();
        let a = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 2,
                init: KMeansInit::PlusPlus,
                seed: 7,
                ..Default::default()
            },
        );
        let c0 = a.cluster_of(UserId::new(0));
        for u in 1..4u32 {
            assert_eq!(a.cluster_of(UserId::new(u)), c0);
        }
        assert_ne!(a.cluster_of(UserId::new(4)), c0);
    }

    #[test]
    fn plus_plus_spreads_initial_seeds_across_blocks() {
        // With farthest-first seeding, the two seeds must land in
        // different taste blocks for any seed value.
        let m = two_blocks();
        for seed in 0..10u64 {
            let a = KMeans::fit(
                &m,
                &KMeansConfig {
                    k: 2,
                    init: KMeansInit::PlusPlus,
                    seed,
                    max_iterations: 20,
                    threads: Some(2),
                    tol: 1e-9,
                },
            );
            // converged 2-cluster solutions on this data separate the blocks
            assert_ne!(
                a.cluster_of(UserId::new(0)),
                a.cluster_of(UserId::new(7)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn plus_plus_is_deterministic_per_seed() {
        let m = two_blocks();
        let cfg = KMeansConfig {
            k: 3,
            init: KMeansInit::PlusPlus,
            seed: 5,
            ..Default::default()
        };
        let a = KMeans::fit(&m, &cfg);
        let b = KMeans::fit(&m, &cfg);
        for u in m.users() {
            assert_eq!(a.cluster_of(u), b.cluster_of(u));
        }
    }
}
