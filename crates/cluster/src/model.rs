//! The bundled offline clustering model: K-means + smoothing + iCluster.

use cf_matrix::RatingMatrix;

use crate::{ClusterAssignment, ICluster, KMeans, KMeansConfig, Smoothed, Smoother};

/// Configuration for [`ClusterModel::fit`].
#[derive(Debug, Clone, Default)]
pub struct ClusterModelConfig {
    /// K-means parameters (cluster count `C`, iterations, seed).
    pub kmeans: KMeansConfig,
    /// Worker threads for smoothing and iCluster (`None` = auto).
    pub threads: Option<usize>,
}

/// Everything CFSF's offline phase derives from user clustering, built in
/// one call: the assignment, the smoothed dense matrix with provenance
/// bits, and the per-user cluster rankings.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    /// Cluster id per user + member lists.
    pub clusters: ClusterAssignment,
    /// Smoothed dense ratings + deviation table (Eq. 7–8).
    pub smoothed: Smoothed,
    /// Per-user cluster rankings (Eq. 9).
    pub icluster: ICluster,
}

impl ClusterModel {
    /// Runs K-means, smoothing, and iCluster construction in sequence.
    pub fn fit(m: &RatingMatrix, config: &ClusterModelConfig) -> Self {
        let clusters = KMeans::fit(m, &config.kmeans);
        let smoothed = Smoother::smooth(m, &clusters, config.threads);
        let icluster = ICluster::build(m, &smoothed, config.threads);
        Self {
            clusters,
            smoothed,
            icluster,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::{ItemId, MatrixBuilder, UserId};

    #[test]
    fn fit_produces_consistent_bundle() {
        let mut b = MatrixBuilder::new();
        for u in 0..6u32 {
            for i in 0..5u32 {
                if (u + i) % 4 == 0 {
                    continue;
                }
                let r = if (u < 3) == (i < 3) { 5.0 } else { 2.0 };
                b.push(UserId::new(u), ItemId::new(i), r);
            }
        }
        let m = b.build().unwrap();
        let model = ClusterModel::fit(
            &m,
            &ClusterModelConfig {
                kmeans: KMeansConfig {
                    k: 2,
                    seed: 9,
                    ..Default::default()
                },
                threads: Some(2),
            },
        );
        assert_eq!(model.clusters.k(), 2);
        assert_eq!(model.smoothed.num_clusters(), 2);
        assert_eq!(model.icluster.num_users(), m.num_users());
        assert!(model.smoothed.dense.is_complete());
    }
}
