//! # cf-cluster — user clustering, smoothing, and iCluster ranking
//!
//! The offline half of CFSF's "smoothing strategy" (§IV-C / §IV-D of the
//! paper), also reused by the SCBPCC baseline:
//!
//! - [`KMeans`] — K-means over user profiles under a PCC-derived
//!   similarity (Eq. 6), with deterministic seeding and empty-cluster
//!   repair,
//! - [`Smoother`] / [`Smoothed`] — fills every unrated cell with
//!   `r̄_u + Δr(C_u, i)` (Eq. 7–8), keeping provenance bits so Eq. 10/11
//!   can discount imputed ratings,
//! - [`ICluster`] — for every user, all clusters ranked by descending
//!   user↔cluster similarity (Eq. 9); the online phase walks this ranking
//!   to harvest like-minded-user candidates,
//! - [`ClusterModel`] — the bundle of all three that CFSF's offline phase
//!   produces in one call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod icluster;
mod kmeans;
mod model;
mod quality;
mod smoothing;

pub use icluster::ICluster;
pub use kmeans::{ClusterAssignment, KMeans, KMeansConfig, KMeansInit};
pub use model::{ClusterModel, ClusterModelConfig};
pub use quality::adjusted_rand_index;
pub use smoothing::{Smoothed, Smoother};
