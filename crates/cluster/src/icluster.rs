//! iCluster — per-user ranking of clusters by Eq. 9 similarity (§IV-D).
//!
//! After smoothing, CFSF stores for each user the list of all clusters
//! sorted by descending user↔cluster similarity. The online phase walks
//! this list cluster by cluster to harvest like-minded-user candidates,
//! which is what replaces the whole-matrix neighbor search of classic
//! user-based CF.

use cf_matrix::{RatingMatrix, UserId};
use cf_parallel::par_map;

use crate::Smoothed;

/// Per-user cluster rankings.
#[derive(Debug, Clone)]
pub struct ICluster {
    /// `ranked[u]` = cluster indices sorted by descending Eq. 9 similarity.
    ranked: Vec<Vec<u32>>,
    /// `sims[u]` = the similarity value for each entry of `ranked[u]`.
    sims: Vec<Vec<f64>>,
}

impl ICluster {
    /// Builds the ranking for every user in parallel.
    ///
    /// Eq. 9 correlates the user's mean-offset ratings with the cluster's
    /// deviation profile `Δr(C, ·)` over the items the user rated for
    /// which the cluster has a defined deviation. Clusters sharing no item
    /// with the user score 0. Ties break toward the lower cluster index so
    /// the ranking is deterministic.
    pub fn build(m: &RatingMatrix, smoothed: &Smoothed, threads: Option<usize>) -> Self {
        let threads = cf_parallel::effective_threads(threads);
        let k = smoothed.num_clusters();
        let p = m.num_users();

        let per_user: Vec<(Vec<u32>, Vec<f64>)> = par_map(p, threads, |ui| {
            let u = UserId::from(ui);
            let (items, vals) = m.user_row(u);
            let mean_u = m.user_mean(u);
            let mut scored: Vec<(u32, f64)> = (0..k as u32)
                .map(|c| {
                    let dev = smoothed.deviation_row(c as usize);
                    let mut dot = 0.0;
                    let mut nd = 0.0;
                    let mut nu = 0.0;
                    let mut n = 0usize;
                    for (&i, &r) in items.iter().zip(vals) {
                        let d = dev[i.index()];
                        if d.is_nan() {
                            continue;
                        }
                        let du = r - mean_u;
                        dot += d * du;
                        nd += d * d;
                        nu += du * du;
                        n += 1;
                    }
                    let s = if n < 2 || nd <= 0.0 || nu <= 0.0 {
                        0.0
                    } else {
                        (dot / (nd.sqrt() * nu.sqrt())).clamp(-1.0, 1.0)
                    };
                    (c, s)
                })
                .collect();
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("similarities are finite")
                    .then(a.0.cmp(&b.0))
            });
            let ranked = scored.iter().map(|&(c, _)| c).collect();
            let sims = scored.iter().map(|&(_, s)| s).collect();
            (ranked, sims)
        });

        let mut ranked = Vec::with_capacity(p);
        let mut sims = Vec::with_capacity(p);
        for (r, s) in per_user {
            ranked.push(r);
            sims.push(s);
        }
        Self { ranked, sims }
    }

    /// Clusters for user `u`, best first.
    #[inline]
    pub fn ranking(&self, u: UserId) -> &[u32] {
        &self.ranked[u.index()]
    }

    /// Eq. 9 similarity values parallel to [`Self::ranking`].
    #[inline]
    pub fn similarities(&self, u: UserId) -> &[f64] {
        &self.sims[u.index()]
    }

    /// Number of users covered.
    pub fn num_users(&self) -> usize {
        self.ranked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KMeans, KMeansConfig, Smoother};
    use cf_matrix::{ItemId, MatrixBuilder};

    /// Two planted taste groups (as in the kmeans tests) so Eq. 9 has an
    /// unambiguous best cluster per user.
    fn setup() -> (RatingMatrix, Smoothed, crate::ClusterAssignment) {
        let mut b = MatrixBuilder::new();
        for u in 0..8u32 {
            let loves_low = u < 4;
            for i in 0..6u32 {
                let r = if (i < 3) == loves_low { 5.0 } else { 1.0 };
                // leave a few holes so smoothing has work to do
                if (u + i) % 5 == 0 {
                    continue;
                }
                b.push(UserId::new(u), ItemId::new(i), r);
            }
        }
        let m = b.build().unwrap();
        let clusters = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 2,
                seed: 1,
                ..Default::default()
            },
        );
        let smoothed = Smoother::smooth(&m, &clusters, Some(1));
        (m, smoothed, clusters)
    }

    #[test]
    fn own_cluster_ranks_first_for_planted_groups() {
        let (m, smoothed, clusters) = setup();
        let ic = ICluster::build(&m, &smoothed, Some(2));
        for u in m.users() {
            let own = clusters.cluster_of(u) as u32;
            assert_eq!(
                ic.ranking(u)[0],
                own,
                "user {u:?} should rank its own cluster first"
            );
        }
    }

    #[test]
    fn ranking_is_a_permutation_of_clusters() {
        let (m, smoothed, _) = setup();
        let ic = ICluster::build(&m, &smoothed, Some(1));
        for u in m.users() {
            let mut r: Vec<u32> = ic.ranking(u).to_vec();
            r.sort_unstable();
            assert_eq!(r, vec![0, 1]);
        }
    }

    #[test]
    fn similarities_are_descending_and_bounded() {
        let (m, smoothed, _) = setup();
        let ic = ICluster::build(&m, &smoothed, Some(1));
        for u in m.users() {
            let s = ic.similarities(u);
            assert!(s.windows(2).all(|w| w[0] >= w[1]));
            assert!(s.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn deterministic_across_threads() {
        let (m, smoothed, _) = setup();
        let a = ICluster::build(&m, &smoothed, Some(1));
        let b = ICluster::build(&m, &smoothed, Some(4));
        for u in m.users() {
            assert_eq!(a.ranking(u), b.ranking(u));
        }
    }

    #[test]
    fn user_with_no_cluster_overlap_scores_zero() {
        // u2 rates only item 2, which no cluster-0/1 member deviation
        // covers… construct directly: 3 users, u2 disjoint item.
        let mut b = MatrixBuilder::with_dims(3, 4);
        b.push(UserId::new(0), ItemId::new(0), 5.0);
        b.push(UserId::new(0), ItemId::new(1), 1.0);
        b.push(UserId::new(1), ItemId::new(0), 5.0);
        b.push(UserId::new(1), ItemId::new(1), 1.0);
        b.push(UserId::new(2), ItemId::new(3), 4.0);
        let m = b.build().unwrap();
        let clusters = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 2,
                seed: 5,
                ..Default::default()
            },
        );
        let smoothed = Smoother::smooth(&m, &clusters, Some(1));
        let ic = ICluster::build(&m, &smoothed, Some(1));
        // u2 has a single rated item → overlap < 2 with every cluster → 0s
        let sims = ic.similarities(UserId::new(2));
        assert!(sims.iter().all(|&s| s == 0.0));
        // ranking still lists every cluster
        assert_eq!(ic.ranking(UserId::new(2)).len(), clusters.k());
    }
}
