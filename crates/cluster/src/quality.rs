//! Clustering quality metrics.
//!
//! The synthetic generator plants ground-truth taste groups, so we can
//! *measure* whether K-means under the PCC metric recovers them — the
//! implicit premise of the paper's smoothing strategy (smoothing within
//! a cluster only helps if clusters capture real taste structure).

use std::collections::HashMap;

/// Adjusted Rand Index between two labelings of the same population.
///
/// 1.0 = identical partitions (up to label permutation), ≈0 = the
/// agreement expected by chance, negative = worse than chance. The
/// labelings may use different label alphabets and different cluster
/// counts.
///
/// # Panics
/// Panics if the labelings have different lengths or are empty.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same population");
    assert!(!a.is_empty(), "empty labelings have no ARI");
    let n = a.len();

    // Contingency table.
    let mut table: HashMap<(u32, u32), u64> = HashMap::new();
    let mut rows: HashMap<u32, u64> = HashMap::new();
    let mut cols: HashMap<u32, u64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *table.entry((x, y)).or_default() += 1;
        *rows.entry(x).or_default() += 1;
        *cols.entry(y).or_default() += 1;
    }

    fn choose2(x: u64) -> f64 {
        (x as f64) * (x as f64 - 1.0) / 2.0
    }

    let sum_table: f64 = table.values().map(|&v| choose2(v)).sum();
    let sum_rows: f64 = rows.values().map(|&v| choose2(v)).sum();
    let sum_cols: f64 = cols.values().map(|&v| choose2(v)).sum();
    let total = choose2(n as u64);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < f64::EPSILON {
        // both partitions trivial (all-one-cluster or all-singletons)
        return if sum_table == max_index { 1.0 } else { 0.0 };
    }
    (sum_table - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KMeans, KMeansConfig};
    use cf_data::SyntheticConfig;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // label permutation doesn't matter
        let b = vec![5, 5, 9, 9, 7, 7];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // a splits by half, b alternates: agreement is chance-level
        let a: Vec<u32> = (0..40).map(|i| (i / 20) as u32).collect();
        let b: Vec<u32> = (0..40).map(|i| (i % 2) as u32).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.15, "got {ari}");
    }

    #[test]
    fn partial_agreement_is_between() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.0 && ari < 1.0, "got {ari}");
    }

    #[test]
    #[should_panic(expected = "same population")]
    fn length_mismatch_panics() {
        let _ = adjusted_rand_index(&[0, 1], &[0]);
    }

    #[test]
    fn kmeans_recovers_planted_taste_groups() {
        // The premise of the smoothing strategy, measured: K-means with
        // k = true group count must beat chance decisively.
        let d = SyntheticConfig {
            taste_groups: 4,
            noise_sd: 0.4,
            ..SyntheticConfig::small()
        }
        .generate();
        let truth = d.user_groups.as_ref().unwrap();
        let clusters = KMeans::fit(
            &d.matrix,
            &KMeansConfig {
                k: 4,
                seed: 3,
                ..Default::default()
            },
        );
        let labels: Vec<u32> = d
            .matrix
            .users()
            .map(|u| clusters.cluster_of(u) as u32)
            .collect();
        let ari = adjusted_rand_index(truth, &labels);
        assert!(
            ari > 0.5,
            "K-means should recover planted groups, ARI = {ari}"
        );
    }
}
