//! Cluster-based rating smoothing — Eq. 7 and Eq. 8 of the paper.
//!
//! Within each user cluster, an unrated cell `(u, i)` is filled with
//! `r̄_u + Δr(C_u, i)`, where `Δr(C, i)` is the average *mean-offset*
//! rating of item `i` among members of `C` who rated it (Eq. 8). Keeping
//! the offset (rather than the raw cluster average) is what removes
//! per-user rating-style diversity: a harsh rater and a generous rater in
//! the same cluster receive different absolute imputations that express
//! the same relative preference.

use cf_matrix::{DenseRatings, ItemId, RatingMatrix, UserId};
use cf_parallel::par_map;

use crate::ClusterAssignment;

/// The output of smoothing: a complete dense matrix plus the per-cluster
/// deviation table Eq. 9 and the online phase both need.
#[derive(Debug, Clone)]
pub struct Smoothed {
    /// Dense ratings: originals flagged, every other cell imputed.
    pub dense: DenseRatings,
    /// `deviations[c][i]` = `Δr(C_c, i)`, `NaN` when no member of cluster
    /// `c` rated item `i`.
    deviations: Vec<Vec<f64>>,
    /// How many cells were filled by the cluster deviation (vs. the
    /// user-mean fallback). Diagnostic for tests and reports.
    pub cells_from_cluster: usize,
    /// Cells filled with the bare user mean because the cluster carried no
    /// signal for that item.
    pub cells_from_fallback: usize,
}

impl Smoothed {
    /// `Δr(C_c, i)` if any member of cluster `c` rated `i`.
    #[inline]
    pub fn deviation(&self, c: usize, i: ItemId) -> Option<f64> {
        let v = self.deviations[c][i.index()];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// The full deviation row of cluster `c` (`NaN` = undefined).
    #[inline]
    pub fn deviation_row(&self, c: usize) -> &[f64] {
        &self.deviations[c]
    }

    /// Number of clusters the table covers.
    pub fn num_clusters(&self) -> usize {
        self.deviations.len()
    }
}

/// Smoothing engine. Stateless; see [`Smoother::smooth`].
pub struct Smoother;

impl Smoother {
    /// Computes the deviation table (Eq. 8) and fills the dense matrix
    /// (Eq. 7) in parallel over clusters, then over users.
    ///
    /// Fallback policy (the paper leaves this case unspecified): when
    /// cluster `C_u` has no rating at all for item `i`, the cell becomes
    /// plain `r̄_u` (i.e. `Δ = 0`). This abstains from inventing item
    /// signal the cluster doesn't have, and keeps the imputation centered
    /// on the user's own style.
    pub fn smooth(
        m: &RatingMatrix,
        clusters: &ClusterAssignment,
        threads: Option<usize>,
    ) -> Smoothed {
        cf_obs::time_scope!("offline.smoothing.pass_ns");
        let threads = cf_parallel::effective_threads(threads);
        let q = m.num_items();
        let k = clusters.k();

        // Eq. 8, one row per cluster, in parallel.
        let deviations: Vec<Vec<f64>> = par_map(k, threads, |c| {
            let mut sum = vec![0.0f64; q];
            let mut count = vec![0u32; q];
            for &u in clusters.members(c) {
                let mean_u = m.user_mean(u);
                for (i, r) in m.user_ratings(u) {
                    sum[i.index()] += r - mean_u;
                    count[i.index()] += 1;
                }
            }
            (0..q)
                .map(|i| {
                    if count[i] > 0 {
                        sum[i] / count[i] as f64
                    } else {
                        f64::NAN
                    }
                })
                .collect()
        });

        // Eq. 7, one row per user, in parallel; rows are disjoint slices
        // of the dense store.
        let scale = m.scale();
        let rows: Vec<(Vec<f64>, Vec<bool>, usize, usize)> =
            par_map(m.num_users(), threads, |ui| {
                let u = UserId::from(ui);
                let c = clusters.cluster_of(u);
                let dev = &deviations[c];
                let mean_u = m.user_mean(u);
                let mut row = vec![f64::NAN; q];
                let mut original = vec![false; q];
                for (i, r) in m.user_ratings(u) {
                    row[i.index()] = r;
                    original[i.index()] = true;
                }
                let mut from_cluster = 0usize;
                let mut from_fallback = 0usize;
                for i in 0..q {
                    if original[i] {
                        continue;
                    }
                    let d = dev[i];
                    let v = if d.is_nan() {
                        from_fallback += 1;
                        mean_u
                    } else {
                        from_cluster += 1;
                        mean_u + d
                    };
                    row[i] = scale.clamp(v);
                }
                (row, original, from_cluster, from_fallback)
            });

        let mut dense = DenseRatings::new(m.num_users(), q);
        let mut cells_from_cluster = 0usize;
        let mut cells_from_fallback = 0usize;
        for (ui, (row, original, fc, ff)) in rows.into_iter().enumerate() {
            let u = UserId::from(ui);
            for (i, v) in row.into_iter().enumerate() {
                let item = ItemId::from(i);
                if original[i] {
                    dense.set_original(u, item, v);
                } else {
                    dense.set_smoothed(u, item, v);
                }
            }
            cells_from_cluster += fc;
            cells_from_fallback += ff;
        }

        cf_obs::counter!("offline.smoothing.cells_from_cluster").add(cells_from_cluster as u64);
        cf_obs::counter!("offline.smoothing.cells_from_fallback").add(cells_from_fallback as u64);

        Smoothed {
            dense,
            deviations,
            cells_from_cluster,
            cells_from_fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KMeans, KMeansConfig};
    use cf_matrix::MatrixBuilder;

    /// One cluster of 3 users. u0 is a harsh rater (mean 2), u1 generous
    /// (mean 4); item 2 is rated only by u2.
    fn matrix() -> RatingMatrix {
        let mut b = MatrixBuilder::with_dims(3, 4);
        b.push(UserId::new(0), ItemId::new(0), 1.0);
        b.push(UserId::new(0), ItemId::new(1), 3.0);
        b.push(UserId::new(1), ItemId::new(0), 3.0);
        b.push(UserId::new(1), ItemId::new(1), 5.0);
        b.push(UserId::new(2), ItemId::new(2), 4.0);
        b.push(UserId::new(2), ItemId::new(3), 2.0);
        b.build().unwrap()
    }

    fn one_cluster(m: &RatingMatrix) -> ClusterAssignment {
        KMeans::fit(
            m,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn deviations_match_equation_eight() {
        let m = matrix();
        let s = Smoother::smooth(&m, &one_cluster(&m), Some(1));
        // item 0: raters u0 (1-2=-1) and u1 (3-4=-1) → Δ = -1
        assert!((s.deviation(0, ItemId::new(0)).unwrap() + 1.0).abs() < 1e-12);
        // item 1: (3-2) and (5-4) → Δ = +1
        assert!((s.deviation(0, ItemId::new(1)).unwrap() - 1.0).abs() < 1e-12);
        // item 2: only u2 (4-3=+1) → Δ = +1
        assert!((s.deviation(0, ItemId::new(2)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_respects_user_style() {
        let m = matrix();
        let s = Smoother::smooth(&m, &one_cluster(&m), Some(1));
        // u0 (mean 2) gets item 2 as 2 + 1 = 3; u1 (mean 4) gets 4 + 1 = 5.
        assert!((s.dense.get(UserId::new(0), ItemId::new(2)).unwrap() - 3.0).abs() < 1e-12);
        assert!((s.dense.get(UserId::new(1), ItemId::new(2)).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn originals_survive_untouched() {
        let m = matrix();
        let s = Smoother::smooth(&m, &one_cluster(&m), Some(1));
        assert_eq!(s.dense.get(UserId::new(0), ItemId::new(0)), Some(1.0));
        assert!(s.dense.is_original(UserId::new(0), ItemId::new(0)));
        assert!(!s.dense.is_original(UserId::new(0), ItemId::new(2)));
    }

    #[test]
    fn matrix_is_complete_after_smoothing() {
        let m = matrix();
        let s = Smoother::smooth(&m, &one_cluster(&m), Some(2));
        assert!(s.dense.is_complete());
        assert_eq!(
            s.cells_from_cluster + s.cells_from_fallback,
            m.num_users() * m.num_items() - m.num_ratings()
        );
    }

    #[test]
    fn fallback_used_when_cluster_lacks_signal() {
        // Two singleton-ish clusters: item rated only in the other cluster
        // triggers the user-mean fallback.
        let mut b = MatrixBuilder::with_dims(2, 2);
        b.push(UserId::new(0), ItemId::new(0), 5.0);
        b.push(UserId::new(0), ItemId::new(1), 1.0);
        b.push(UserId::new(1), ItemId::new(0), 1.0);
        let m = b.build().unwrap();
        let clusters = KMeans::fit(
            &m,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        let s = Smoother::smooth(&m, &clusters, Some(1));
        assert!(s.dense.is_complete());
        // u1's cluster (u1 alone, or with u0 — either way the accounting
        // must add up) — check the counters are consistent.
        assert_eq!(s.cells_from_cluster + s.cells_from_fallback, 1);
    }

    #[test]
    fn smoothed_values_stay_on_scale() {
        // Generous user (mean 5) plus a strongly positive deviation could
        // exceed 5 without clamping.
        let mut b = MatrixBuilder::with_dims(2, 3);
        b.push(UserId::new(0), ItemId::new(0), 5.0);
        b.push(UserId::new(0), ItemId::new(1), 5.0);
        b.push(UserId::new(1), ItemId::new(0), 2.0);
        b.push(UserId::new(1), ItemId::new(2), 5.0); // +1.5 above u1's mean
        let m = b.build().unwrap();
        let s = Smoother::smooth(&m, &one_cluster(&m), Some(1));
        for u in m.users() {
            for i in m.items() {
                let v = s.dense.get(u, i).unwrap();
                assert!((1.0..=5.0).contains(&v), "({u:?},{i:?}) = {v}");
            }
        }
    }

    #[test]
    fn deterministic_across_threads() {
        let m = matrix();
        let a = Smoother::smooth(&m, &one_cluster(&m), Some(1));
        let b = Smoother::smooth(&m, &one_cluster(&m), Some(4));
        for u in m.users() {
            for i in m.items() {
                assert_eq!(a.dense.get(u, i), b.dense.get(u, i));
            }
        }
    }
}
